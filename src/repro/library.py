"""A standard cell library (the Section 5 outlook, built).

"It is possible, for example, to build libraries of standard cells,
similar to subroutine libraries.  If a designer needs, say, an inner
product step cell, he may be able to select it from a library rather
than construct it himself."

:class:`CellLibrary` is that registry: each entry bundles a systolic cell
kernel factory (pluggable into :class:`~repro.core.array.SystolicMatcherArray`),
an optional switch-level netlist builder, and an optional stick-diagram
generator -- the three representations the Figure 4-1 flow moves between.
:func:`standard_library` ships the cells this reproduction already
verified, including the paper's own example, the inner product step cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .errors import ReproError


@dataclass(frozen=True)
class CellEntry:
    """One library cell.

    ``kernel_factory`` builds the behavioural kernel (callable with the
    cell index, per the array engine's contract).  ``circuit_builder``,
    when present, takes ``(circuit, prefix, clk, positive)`` and returns
    the port map; ``stream_kind`` documents what the pattern/stream items
    must carry ("characters" or "numbers").
    """

    name: str
    description: str
    kernel_factory: Callable[[int], object]
    stream_kind: str = "characters"
    circuit_builder: Optional[Callable] = None

    def make_kernel(self, index: int = 0):
        return self.kernel_factory(index)


class CellLibrary:
    """A name -> :class:`CellEntry` registry with lookup and listing."""

    def __init__(self) -> None:
        self._cells: Dict[str, CellEntry] = {}

    def register(self, entry: CellEntry) -> None:
        if entry.name in self._cells:
            raise ReproError(f"cell {entry.name!r} already registered")
        self._cells[entry.name] = entry

    def get(self, name: str) -> CellEntry:
        try:
            return self._cells[name]
        except KeyError:
            raise ReproError(
                f"no cell named {name!r}; available: {sorted(self._cells)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def names(self) -> List[str]:
        return sorted(self._cells)

    def catalogue(self) -> str:
        """Human-readable listing (the library's 'data sheet')."""
        lines = []
        for name in self.names():
            e = self._cells[name]
            extras = []
            if e.circuit_builder is not None:
                extras.append("netlist")
            lines.append(
                f"{name:<22} [{e.stream_kind:>10}] {e.description}"
                + (f"  ({', '.join(extras)})" if extras else "")
            )
        return "\n".join(lines)


def standard_library() -> CellLibrary:
    """The cells this reproduction provides, ready for selection."""
    from .circuit.cells.accumulator import build_accumulator
    from .circuit.cells.comparator import build_comparator
    from .core.cells import MatcherCellKernel
    from .extensions.correlation import CorrelationCellKernel
    from .extensions.counting import CountingCellKernel
    from .extensions.linear_products import (
        INNER_PRODUCT,
        MIN_PLUS,
        LinearProductCellKernel,
    )

    lib = CellLibrary()
    lib.register(
        CellEntry(
            "matcher",
            "comparator + accumulator character cell (Section 3.2.1)",
            lambda i: MatcherCellKernel(),
            circuit_builder=build_comparator,
        )
    )
    lib.register(
        CellEntry(
            "match-counter",
            "comparator + counting cell (Section 3.4)",
            lambda i: CountingCellKernel(),
        )
    )
    lib.register(
        CellEntry(
            "correlator",
            "difference + adder cell for squared-distance correlation "
            "(Section 3.4)",
            lambda i: CorrelationCellKernel(),
            stream_kind="numbers",
        )
    )
    lib.register(
        CellEntry(
            "inner-product-step",
            "the paper's library example: t <- t + p * s",
            lambda i: LinearProductCellKernel(INNER_PRODUCT),
            stream_kind="numbers",
        )
    )
    lib.register(
        CellEntry(
            "min-plus-step",
            "tropical linear product cell: t <- min(t, p + s)",
            lambda i: LinearProductCellKernel(MIN_PLUS),
            stream_kind="numbers",
        )
    )
    return lib
