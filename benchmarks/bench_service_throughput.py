"""Farm throughput: aggregate chars/s vs worker count, and where it stops.

Section 5's economics only matter at scale: the service layer multiplexes
many queries onto many chips, so aggregate throughput should grow with
worker count -- until the *host* runs out of memory bandwidth, which is
the paper's introduction replayed at farm scale.  On a 1979 minicomputer
one chip already outruns memory (no scaling at all); on a fast mainframe
the farm scales near-linearly until the shared bus saturates, then goes
flat.
"""

from repro import Alphabet, match_oracle, parse_pattern
from repro.analysis import Table
from repro.chip.chip import ChipSpec
from repro.host.bus import HostSpec
from repro.service import MatcherService, SchedulerConfig, uniform_pool

from conftest import random_pattern, random_text

AB = Alphabet("ABCD")
MINI_1979 = HostSpec()  # 600 ns cycle, 2-byte words
MAINFRAME = HostSpec(name="mainframe", memory_cycle_ns=100.0, bytes_per_word=8)

N_JOBS = 24
TEXT_LEN = 160
PATTERN = random_pattern(6, seed=3)
TEXTS = [random_text(TEXT_LEN, seed=100 + i) for i in range(N_JOBS)]


def run_farm(n_workers, host):
    pool = uniform_pool(n_workers, ChipSpec(8, 2), AB)
    svc = MatcherService(
        pool,
        host=host,
        config=SchedulerConfig(
            queue_capacity=N_JOBS,
            wide_text_threshold=10**9,  # isolate scaling from sharding
        ),
    )
    for text in TEXTS:
        svc.submit(PATTERN, text)
    results = svc.drain()
    return svc, results


def aggregate_rate(svc):
    return svc.telemetry.aggregate_chars_per_s(svc.beat_ns)


def test_service_throughput_scales_until_bus_saturates(ab4):
    table = Table(
        ["workers", "mainframe Mchar/s", "speedup", "bus util",
         "1979-mini Mchar/s"],
        title="farm throughput vs worker count",
    )
    fast_rates, mini_rates = {}, {}
    for n in (1, 2, 4, 8, 16):
        svc, results = run_farm(n, MAINFRAME)
        fast_rates[n] = aggregate_rate(svc)
        bus_util = svc.telemetry.bus_utilization()
        svc_mini, _ = run_farm(n, MINI_1979)
        mini_rates[n] = aggregate_rate(svc_mini)
        table.row(
            [n, fast_rates[n] / 1e6, fast_rates[n] / fast_rates[1],
             bus_util, mini_rates[n] / 1e6]
        )
    print()
    table.print()

    # Results stay oracle-identical at every scale (spot check the last run).
    want = match_oracle(parse_pattern(PATTERN, AB), list(TEXTS[0]))
    assert results[0].results == want

    # Near-linear region: doubling workers ~doubles throughput.
    assert fast_rates[2] / fast_rates[1] > 1.8
    assert fast_rates[4] / fast_rates[1] > 3.5
    assert fast_rates[8] / fast_rates[1] > 6.5
    # Saturation: 16 workers cannot double 8 -- the bus is the ceiling.
    assert fast_rates[16] / fast_rates[8] < 1.9
    assert fast_rates[16] / fast_rates[1] < 16 * 0.95
    # The 1979 host is bus-bound from the first chip: adding workers is
    # pointless (the paper's memory-bandwidth claim, at farm scale).
    assert mini_rates[4] / mini_rates[1] < 1.3
    assert mini_rates[16] / mini_rates[1] < 1.3
    # And a single chip already uses essentially all of that memory.
    assert max(mini_rates.values()) / min(mini_rates.values()) < 1.05


def test_farm_drain_measured(benchmark):
    """pytest-benchmark measurement of one 4-worker farm drain."""

    def drain_once():
        svc, results = run_farm(4, MAINFRAME)
        return len(results)

    completed = benchmark(drain_once)
    assert completed == N_JOBS
