"""P2: Plate 2 -- the fabricated prototype chip.

Regenerates the article: 8 character cells, two-bit characters, full
floorplan with pads, fabricatable CIF, and the 250 ns/character data
rate; checks the prototype against the oracle at full capacity.
"""

from repro import match_oracle, parse_pattern
from repro.analysis import Table
from repro.chip import PrototypeChip
from repro.layout.assembly import ChipAssembler
from repro.layout.cif import parse_cif

from conftest import random_text


def test_plate_2_behaviour(benchmark):
    chip = PrototypeChip()
    chip.load_pattern("ABXDABXD")             # 8 chars: full capacity
    text = random_text(500, seed=9)
    results = benchmark(chip.match, text)
    assert results == match_oracle(
        parse_pattern("ABXDABXD", chip.alphabet), list(text)
    )
    assert chip.data_rate_mchars_per_s() == 4.0


def test_plate_2_layout_and_cif(benchmark):
    asm = ChipAssembler(8, 2, "prototype")
    cif = benchmark(asm.to_cif)
    parsed = parse_cif(cif)
    assert parsed.flatten()
    report = asm.area_report()
    table = Table(["metric", "value"], title="Plate 2 prototype layout")
    for key in ("columns", "bit_rows", "cells", "pads",
                "core_area_mm2", "die_area_mm2"):
        table.row([key, report[key]])
    table.row(["CIF bytes", len(cif)])
    print()
    table.print()
    assert report["cells"] == 24
