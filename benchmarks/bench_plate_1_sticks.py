"""P1: Plate 1 -- the comparator cell's stick diagram and layout.

Regenerates the artifact: a stick diagram whose electrical interpretation
matches the Figure 3-6 netlist device for device, mechanically expanded
to a design-rule-clean mask layout.
"""

from repro.layout.cells import check_cell, comparator_layout


def test_plate_1_sticks_match_netlist(benchmark):
    sd, layout = benchmark(comparator_layout, True)
    assert len(sd.transistor_sites()) == 15
    assert sum(1 for _, dep in sd.transistor_sites() if dep) == 4  # pullups
    # signal continuity across the cell for abutment
    groups = sd.connectivity()
    for port in ("p_in", "s_in", "clk"):
        assert any(port in g and port + "_r" in g for g in groups)
    print()
    print(f"Plate 1 (generated twin): {len(sd.sticks)} sticks, "
          f"{len(sd.contacts)} contacts, cell {sd.width}x{sd.height} lambda")


def test_plate_1_layout_drc_clean(benchmark):
    _, layout = comparator_layout(True)
    violations = benchmark(check_cell, layout)
    assert violations == []
