"""F3-4: Figure 3-4 -- the bit-pipelined comparators and checkerboard.

Regenerates the figure: staggered bits, results rippling downward, and
active comparators forming a checkerboard; asserts equivalence with the
character-level machine and benchmarks the bit-level simulation.
"""

from repro import BitLevelMatcher, PatternMatcher, match_oracle

from conftest import random_text


def test_fig_3_4_checkerboard(ab4):
    m = BitLevelMatcher("ABCD", ab4, record_checkerboard=True)
    m.match(random_text(30, seed=4))
    assert m.checkerboard_ok()
    mid = m.checkerboard[len(m.checkerboard) // 2].active
    print()
    print("Figure 3-4 checkerboard (one steady-state beat; #=active):")
    for row in mid:
        print("   " + "".join("#" if a else "." for a in row))


def test_fig_3_4_equals_char_level(ab4):
    text = random_text(200, seed=5)
    for pattern in ("A", "AXC", "DCBA"):
        assert (
            BitLevelMatcher(pattern, ab4).match(text)
            == PatternMatcher(pattern, ab4).match(text)
        )


def test_fig_3_4_bit_level_throughput(ab4, benchmark):
    m = BitLevelMatcher("AXCD", ab4)
    text = random_text(600, seed=6)
    results = benchmark(m.match, text)
    assert results == match_oracle(m.pattern, list(text))
