"""T3.3.2 / T3.3.3: data-flow and cell implementation choices.

Regenerates the Section 3.3.2/3.3.3 trade-off discussions as numbers:
clocked vs self-timed overhead, cell pairing, dynamic vs static shift
registers (device count, control signals, retention).
"""

from repro.analysis import Table
from repro.circuit.shift_register import DynamicShiftRegister, StaticShiftRegister
from repro.circuit.signals import UNKNOWN


def test_sec_3_3_2_clocked_vs_selftimed(benchmark):
    """Clocked data flow: zero extra devices for the chip's scale (the
    clock doubles as the data-flow control); self-timed adds a
    handshake's worth of devices per cell boundary but frees large
    systems from the global clock.  The self-timed array is *simulated*,
    not just counted: same cells, request/acknowledge links, each cell at
    its own pace, verified equal to the clocked machine."""
    from repro import Alphabet, match_oracle, parse_pattern
    from repro.core.array import MATCHER_CHANNELS, SystolicMatcherArray, TextToken
    from repro.core.cells import MatcherCellKernel, ResultToken
    from repro.streams import RecirculatingPattern
    from repro.systolic.cell import is_bubble
    from repro.systolic.selftimed import SelfTimedLinearArray

    ab = Alphabet("ABCD")
    text = "ABCAACACCAB" * 4
    ref = SystolicMatcherArray(3)
    items = RecirculatingPattern(parse_pattern("AXC", ab)).items
    tokens = [TextToken(c, i) for i, c in enumerate(text)]
    schedule = ref.input_schedule(items, tokens, ref.beats_needed(len(tokens)))

    def run_async():
        array = SelfTimedLinearArray(
            3, MATCHER_CHANNELS, lambda i: MatcherCellKernel(), ("p", "s"),
            cell_delays=[0.8, 1.3, 1.0],
        )
        return array, array.run(schedule)

    array, outs = benchmark(run_async)
    raw = {}
    for o in outs:
        if not is_bubble(o["s"]) and isinstance(o["r"], ResultToken):
            raw[o["s"].index] = o["r"].value
    got = [bool(raw.get(i, False)) if i >= 2 else False for i in range(len(text))]
    assert got == match_oracle(parse_pattern("AXC", ab), list(text))

    handshake_devices_per_boundary = 8  # request/ack latches + C-element
    cells = 8 * 3
    table = Table(["style", "extra devices", "global wires", "pace set by"],
                  title="Section 3.3.2 data flow control")
    table.row(["clocked (chosen)", 0, 2, "worst cell + clock margin"])
    table.row(["self-timed", handshake_devices_per_boundary * cells, 0,
               "slowest cell, no margin"])
    print()
    table.print()
    print(f"self-timed run: {array.stats.firings} firings, mean slot "
          f"interval {array.stats.mean_slot_interval:.2f} (slowest cell 1.3)")


def test_sec_3_3_3_dynamic_vs_static(benchmark):
    def build_both():
        return DynamicShiftRegister(4), StaticShiftRegister(4)

    dyn, stat = benchmark(build_both)
    table = Table(
        ["register", "devices/stage", "control signals", "holds 5 ms?"],
        title="Section 3.3.3 cell implementation",
    )

    def survives(sr):
        sr.shift(True)
        sr.shift(None)
        sr.hold(5e6)
        return all(v is not UNKNOWN for v in sr.read_storage())

    dyn_ok = survives(dyn)
    stat_ok = survives(stat)
    table.row(["dynamic (chosen)", dyn.devices_per_stage,
               dyn.control_signals, "no" if not dyn_ok else "yes"])
    table.row(["static", stat.devices_per_stage,
               stat.control_signals, "yes" if stat_ok else "no"])
    print()
    table.print()
    assert not dyn_ok and stat_ok
    assert stat.devices_per_stage > dyn.devices_per_stage
    assert stat.control_signals == 3
