"""C-rate: the 250 ns/character claim and its consequences.

Regenerates the introduction's quantitative claims: the chip's data rate
(4 Mchar/s) exceeds a 1979 host's memory bandwidth; the per-character
cost is independent of pattern length while every software approach
degrades.
"""

from repro.analysis import Table
from repro.chip import PrototypeChip
from repro.host import HostBus, HostSpec
from repro.timing import TimingModel

from conftest import random_text


def test_claim_rate_exceeds_memory_bandwidth():
    chip = PrototypeChip()
    hosts = [
        HostSpec("PDP-11-class mini", memory_cycle_ns=900.0, bytes_per_word=2),
        HostSpec("mid mini", memory_cycle_ns=600.0, bytes_per_word=2),
        HostSpec("large mainframe", memory_cycle_ns=100.0, bytes_per_word=8),
    ]
    table = Table(["host", "memory Mchar/s", "chip Mchar/s", "chip faster?"],
                  title="'higher than the memory bandwidth of most "
                        "conventional computers'")
    starved = 0
    for h in hosts:
        mem = h.memory_bandwidth_chars_per_s() / 1e6
        chip_rate = chip.data_rate_mchars_per_s()
        faster = HostBus(h).is_device_starved(chip.spec.beat_ns)
        starved += faster
        table.row([h.name, mem, chip_rate, "yes" if faster else "no"])
    print()
    table.print()
    assert starved >= 2  # "most conventional computers"


def test_claim_rate_independent_of_pattern_length(ab4, benchmark):
    """The hardware property, measured on the simulator: beats per text
    character do not grow with pattern length."""
    from repro import PatternMatcher

    text = random_text(600, seed=27)
    table = Table(["pattern len", "beats", "beats/char"],
                  title="rate vs pattern length (simulated beats)")
    per_char = []
    for L in (2, 4, 8):
        m = PatternMatcher("A" * L, ab4, n_cells=L)
        rep = m.report(text)
        per_char.append(rep.beats / len(text))
        table.row([L, rep.beats, rep.beats / len(text)])
    print()
    table.print()
    assert max(per_char) - min(per_char) < 0.1  # constant (~2 beats/char)

    tm = TimingModel()
    assert tm.per_text_char_ns(2) == tm.per_text_char_ns(64)
    benchmark(PatternMatcher("A" * 8, ab4).match, text)
