"""T3.3.1: the Section 3.3.1 design-alternative comparison, quantified.

Regenerates the paper's prose argument as a table:

* sequential fast matchers (KMP, Boyer-Moore) are *inapplicable* with
  wild cards;
* naive software scales as N*L, Fischer-Paterson is super-linear;
* Mukhopadhyay's broadcast machine is functionally correct but its cycle
  time grows with array size;
* the rejected unidirectional array matches throughput but pays a serial
  reload per pattern change;
* the chosen systolic design: constant per-character cost, zero reload.
"""

import math

from repro import PatternMatcher, match_oracle, parse_pattern
from repro.analysis import Table, comparison_counts
from repro.baselines import (
    BroadcastMatcher,
    UnidirectionalArrayMatcher,
    fischer_paterson_match,
    naive_match,
)
from repro.baselines.broadcast import BroadcastTimingModel
from repro.baselines.fischer_paterson import fft_work_estimate
from repro.baselines.naive import OpCounter
from repro.timing.power import broadcast_cycle_time, local_cycle_time

from conftest import random_pattern, random_text


def test_sec_3_3_1_work_comparison(ab4):
    pattern = random_pattern(8, seed=13)
    text = random_text(1200, seed=14)
    counts = comparison_counts(pattern, text, ab4)
    table = Table(["approach", "unit work"],
                  title=f"Section 3.3.1 work for |pattern|=8, |text|=1200")
    for name, value in counts.items():
        table.row([name, value])
    print()
    table.print()
    assert math.isnan(counts["KMP"])             # inapplicable with wildcards
    assert counts["naive software"] > len(text)  # super-constant per char


def test_sec_3_3_1_broadcast_slowdown(ab4):
    """Broadcast correctness, but cycle time grows with cells."""
    pattern = parse_pattern(random_pattern(6, seed=15), ab4)
    text = random_text(200, seed=16)
    bm = BroadcastMatcher(pattern)
    assert bm.match(list(text)) == match_oracle(pattern, list(text))
    table = Table(["cells", "broadcast cycle (ns)", "systolic cycle (ns)"],
                  title="Section 3.3.1 broadcast vs local cycle time")
    for n in (4, 16, 64, 256):
        table.row([n, broadcast_cycle_time(n), local_cycle_time()])
    print()
    table.print()
    assert broadcast_cycle_time(256) > 4 * local_cycle_time()


def test_sec_3_3_1_unidirectional_reload_penalty(ab4):
    """Query workloads punish the statically-stored pattern."""
    pattern = parse_pattern(random_pattern(16, seed=17, wild_rate=0), ab4)
    uni = UnidirectionalArrayMatcher(pattern)
    queries = [20] * 100  # 100 short queries, new pattern each
    uni_beats = uni.beats_for_workload(queries)
    # chosen design: no reload; same queries
    from repro.core.array import SystolicMatcherArray

    arr = SystolicMatcherArray(16)
    systolic_beats = sum(arr.beats_needed(q) for q in queries)
    print(f"\n100 pattern-changing queries: unidirectional {uni_beats} beats "
          f"(incl. reloads) vs systolic {systolic_beats} beats")
    assert uni.load_beats * len(queries) > 0
    # for one long scan the unidirectional design is faster (full rate) --
    # the trade the paper accepted knowingly
    assert uni.beats_for_text(10_000) < arr.beats_needed(10_000)


def test_sec_3_3_1_fischer_paterson_superlinear(ab4, benchmark):
    pattern = parse_pattern(random_pattern(6, seed=18), ab4)
    text = list(random_text(2000, seed=19))
    results = benchmark(fischer_paterson_match, pattern, text)
    assert results == match_oracle(pattern, text)
    w1 = fft_work_estimate(1000, 6, 4)
    w4 = fft_work_estimate(4000, 6, 4)
    assert w4 > 4 * w1  # more than linear in N


def test_sec_3_3_1_systolic_reference(ab4, benchmark):
    matcher = PatternMatcher(random_pattern(6, seed=18), ab4)
    text = random_text(2000, seed=19)
    results = benchmark(matcher.match, text)
    assert results == match_oracle(matcher.pattern, list(text))
