"""F3-5: Figure 3-5 -- the dynamic shift register at switch level.

Regenerates the figure's behaviour: inverter/pass-transistor stages under
the two-phase non-overlapping clock, alternate stages holding independent
bits, and the ~1 ms retention limit of dynamic storage.
"""

from repro.circuit.shift_register import DynamicShiftRegister
from repro.circuit.signals import HIGH, LOW, UNKNOWN


def shift_burst(n_stages=6, n_bits=8):
    sr = DynamicShiftRegister(n_stages)
    outs = []
    for i in range(n_bits):
        outs.append(sr.shift(i % 3 == 0))
        outs.append(sr.shift(None))
    return sr, outs


def test_fig_3_5_transit(benchmark):
    sr, outs = benchmark(shift_burst)
    known = [v for v in outs if v is not UNKNOWN]
    assert known  # data emerged
    assert sr.devices_per_stage == 3


def test_fig_3_5_retention_limit():
    """'incapable of holding data for more than about 1 ms'"""
    sr = DynamicShiftRegister(2, retention_ns=1e6)
    sr.shift(True)
    sr.shift(None)
    held = sr.read_storage()
    assert UNKNOWN not in held
    sr.hold(0.9e6)
    assert sr.read_storage() == held       # just inside retention
    sr.hold(0.2e6)                         # now past 1 ms total
    assert all(v is UNKNOWN for v in sr.read_storage())
    print()
    print("Figure 3-5: dynamic storage held 0.9 ms, lost at 1.1 ms (1 ms spec)")
