"""F4-1: Figure 4-1 -- the task dependency graph, executed.

Regenerates the figure and runs the whole design flow: every subtask
produces its real artifact (verified algorithm, cell circuits, DRC-clean
layouts, chip CIF) in dependency order.
"""

from repro.analysis import Table
from repro.methodology import DesignFlow, FIGURE_4_1
from repro.methodology.tasks import figure_4_1_graph


def test_fig_4_1_graph_structure():
    g = figure_4_1_graph()
    order = g.topological_order()
    assert order[0] == "algorithm"
    assert order[-1] == "cell_boundary_layouts"
    path, total = g.critical_path()
    table = Table(["task", "depends on", "effort (wk)"],
                  title="Figure 4-1 task dependency graph")
    for spec in FIGURE_4_1:
        table.row([spec.name, ", ".join(spec.depends_on) or "-",
                   spec.effort_weeks])
    print()
    table.print()
    print(f"critical path: {' -> '.join(path)}  ({total} weeks)")


def run_flow():
    return DesignFlow(columns=4, char_bits=2).run()


def test_fig_4_1_executable_flow(benchmark):
    artifacts = benchmark(run_flow)
    assert artifacts["algorithm"]["verified"]
    assert len(artifacts["cell_logic_circuits"]) == 4
    assert artifacts["cell_boundary_layouts"]["cif"].startswith("(")
