"""F3-3: Figure 3-3 -- the comparator/accumulator split.

Regenerates the figure's architecture: the character cell as a comparator
stacked on an accumulator, with lambda and x bits travelling with the
pattern through the accumulator row.  Benchmarks the character-level
array and asserts the split's observable consequences.
"""

from repro import PatternMatcher, match_oracle
from repro.core.cells import MatcherCellKernel

from conftest import random_text


def test_fig_3_3_cell_split(ab4):
    kernel = MatcherCellKernel()
    assert hasattr(kernel, "comparator") and hasattr(kernel, "accumulator")
    # comparator output feeds the accumulator below on the same beat;
    # the x bit makes the accumulator ignore a mismatch
    from repro.core.array import TextToken
    from repro.streams import PatternStreamItem

    kernel.fire({"p": PatternStreamItem("A", True, False), "s": TextToken("B", 0)})
    assert kernel.state_snapshot()["d"] is False     # comparator saw mismatch
    assert kernel.accumulator.t is True              # accumulator ignored it


def test_fig_3_3_char_level_array(ab4, benchmark):
    matcher = PatternMatcher("AXCDXB", ab4)
    text = random_text(1500, seed=3)
    results = benchmark(matcher.match, text)
    assert results == match_oracle(matcher.pattern, list(text))
    assert matcher.array.utilization() <= 0.5 + 1e-9
