"""Cross-level bonus bench: the whole matcher at switch level.

Not a numbered figure, but the load-bearing verification behind
Section 3.2.2: the transistor netlist of the full array reproduces the
algorithm.  Benchmarks the switch-level simulation rate (four orders of
magnitude slower than behavioural -- which is why the paper designs at
the algorithm level and compiles downward).
"""

import time

from repro import Alphabet, PatternMatcher, match_oracle
from repro.circuit.chipnet import GateLevelMatcher


def test_gate_level_matches_oracle(ab4, benchmark):
    g = GateLevelMatcher("AXC", ab4)
    text = "ABCAACACCAB"
    results = benchmark(g.match, text)
    assert results == match_oracle(g.pattern, list(text))


def test_gate_vs_behavioural_speed_ratio(ab4):
    text = "ABCAACACCAB"
    g = GateLevelMatcher("AXC", ab4)
    b = PatternMatcher("AXC", ab4)
    t0 = time.perf_counter()
    g.match(text)
    gate_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(50):
        b.match(text)
    beh_s = (time.perf_counter() - t0) / 50
    print(f"\nswitch-level: {gate_s*1e3:.1f} ms vs behavioural "
          f"{beh_s*1e3:.2f} ms per run ({gate_s/beh_s:.0f}x), "
          f"{g.n_transistors} transistors simulated")
    assert gate_s > beh_s
