"""Section 5 outlook, quantified: wafer-scale integration and the
standard-cell library.

Regenerates the closing argument: with regular, bypassable cells a
defective wafer still yields one big working array (monolithic yield
collapses geometrically, harvested capacity stays linear), and a designer
can pull a verified inner-product step cell from a library instead of
constructing it.
"""

from repro import match_oracle, parse_pattern
from repro.analysis import Table
from repro.core.array import SystolicMatcherArray
from repro.library import standard_library
from repro.streams import RecirculatingPattern
from repro.wafer import Wafer, harvest_linear_array, monolithic_yield
from repro.wafer.reconfigure import matcher_from_harvest
from repro.wafer.yield_model import cells_per_wafer

from conftest import AB4, random_pattern, random_text


def test_sec_5_wafer_yield_curves():
    d = 0.05
    table = Table(["cells", "monolithic yield", "wafer harvest (cells)"],
                  title="Section 5: yield vs scale at 5% cell defect rate")
    for n in (8, 24, 96, 384, 1536):
        side = int(n ** 0.5) + 1
        table.row([n, monolithic_yield(n, d), cells_per_wafer(1, n, d)])
    print()
    table.print()
    assert monolithic_yield(1536, d) < 1e-30
    assert cells_per_wafer(1, 1536, d) > 1400


def harvest_and_match(seed):
    wafer = Wafer(8, 16, defect_rate=0.08, seed=seed)
    harvest = harvest_linear_array(wafer)
    pattern = parse_pattern(random_pattern(12, seed=seed), AB4)
    array = matcher_from_harvest(harvest, n_cells=max(12, harvest.n_cells // 2))
    text = random_text(200, seed=seed + 1)
    raw = array.run(RecirculatingPattern(pattern).items, text)
    got = [bool(raw.get(i, False)) if i >= 11 else False for i in range(len(text))]
    return wafer, harvest, got, match_oracle(pattern, list(text))


def test_sec_5_matcher_survives_defects(benchmark):
    wafer, harvest, got, want = benchmark(harvest_and_match, 5)
    assert got == want
    print(f"\nwafer {wafer.rows}x{wafer.cols}: {wafer.n_sites - wafer.n_functional} "
          f"defects bypassed, {harvest.n_cells}-cell array harvested "
          f"(worst bypass run {harvest.worst_bypass_run}); matcher == oracle")


def test_sec_5_cell_library():
    lib = standard_library()
    print("\nSection 5 standard cell library:")
    print(lib.catalogue())
    entry = lib.get("inner-product-step")  # the paper's example selection
    array = SystolicMatcherArray(4, kernel_factory=entry.make_kernel)
    assert array.n_cells == 4
    assert len(lib) >= 5
