"""Shared helpers for the benchmark harness.

Each bench file regenerates one figure/table/claim of the paper (see the
experiment index in DESIGN.md).  Benches both *measure* (via
pytest-benchmark) and *assert the paper's qualitative shape* -- who wins,
by roughly what factor, where crossovers fall -- since absolute numbers
depend on the simulation substrate, not the 1979 silicon.

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
regenerated tables.
"""

from __future__ import annotations

import random

import pytest

from repro import Alphabet


@pytest.fixture
def ab4():
    return Alphabet("ABCD")


def random_text(n, symbols="ABCD", seed=0):
    rng = random.Random(seed)
    return "".join(rng.choice(symbols) for _ in range(n))


def random_pattern(n, symbols="ABCD", wild_rate=0.25, seed=1):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        if rng.random() < wild_rate:
            out.append("X")
        else:
            out.append(rng.choice(symbols))
    return "".join(out)


#: Module-level alphabet for benches that build patterns outside fixtures.
AB4 = Alphabet("ABCD")
