"""Perf-regression harness for the hot paths (PR 2).

Times the layers the event-driven settle and the packed-word fast path
accelerate, checks each against its slow reference bit for bit, and
writes the numbers to ``BENCH_pr2.json`` so CI can diff runs:

* ``circuit_settle`` -- the switch-level matcher (``GateLevelMatcher``)
  driven by the event engine vs :func:`repro.circuit.simulator.settle_reference`,
  cold and steady-state (warmed partition caches), same result bits.
* ``char_matching`` -- :class:`repro.core.fastpath.FastMatcher` vs the
  stepwise systolic model on a >=100 kB text (quick mode shrinks it),
  both equal to :func:`repro.core.reference.match_oracle`.
* ``bit_gate_agreement`` -- fast path vs the bit-pipelined array and the
  transistor-level netlist on the paper's example text.
* ``service_throughput`` -- wall-clock drain rate of the matcher farm
  with batched submission, results equal to the oracle.

Run::

    PYTHONPATH=src python benchmarks/perf/run.py [--quick] [--out PATH]

Exit status is non-zero if any equivalence check fails.  Speedup targets
(>=5x steady-state settle, >=20x char matching) are recorded as
``meets_target`` booleans; the full (non-quick) run is the one that
should clear them.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Callable, Dict, List

from repro import Alphabet, BitLevelMatcher, FastMatcher, PatternMatcher, match_oracle
from repro.chip.chip import ChipSpec
from repro.circuit import simulator
from repro.circuit.chipnet import GateLevelMatcher
from repro.service import MatcherService, uniform_pool

AB4 = Alphabet("ABCD")


def _timed(fn: Callable[[], object], repeats: int = 1) -> tuple:
    """Best-of-``repeats`` wall time (min filters scheduler noise)."""
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def make_text(n_chars: int, symbols: str = "ABCD") -> str:
    """Deterministic pseudo-random text (no RNG: reproducible runs)."""
    out = []
    state = 0x2545F491
    k = len(symbols)
    for _ in range(n_chars):
        # xorshift32: cheap, stable across platforms
        state ^= (state << 13) & 0xFFFFFFFF
        state ^= state >> 17
        state ^= (state << 5) & 0xFFFFFFFF
        out.append(symbols[state % k])
    return "".join(out)


def bench_circuit_settle(quick: bool) -> Dict[str, object]:
    """Event-driven vs reference settle on the transistor-level matcher."""
    pattern = "AXC"
    text = "ABCAACACCAB" * (2 if quick else 4)
    oracle = match_oracle(PatternMatcher(pattern, AB4).pattern, list(text))

    repeats = 1 if quick else 3

    # Reference engine: monkeypatch the module-level entry point that
    # Circuit.settle re-imports per call.
    orig = simulator.settle
    simulator.settle = simulator.settle_reference
    try:
        g_ref = GateLevelMatcher(pattern, AB4)
        ref_s, ref_out = _timed(lambda: g_ref.match(text), repeats)
    finally:
        simulator.settle = orig

    g_evt = GateLevelMatcher(pattern, AB4)
    cold_s, evt_out = _timed(lambda: g_evt.match(text))
    # Re-runs on the same netlist: partition caches warmed, every beat is
    # a steady-state beat.  This is the regime a long text lives in.
    steady_s, evt_out2 = _timed(lambda: g_evt.match(text), repeats)

    ok = evt_out == ref_out == evt_out2 == oracle
    steady_speedup = ref_s / steady_s if steady_s > 0 else float("inf")
    return {
        "scale": f"GateLevelMatcher({pattern!r}, {AB4!r}), "
                 f"{g_evt.n_transistors} transistors, {len(text)} chars",
        "reference_s": ref_s,
        "event_cold_s": cold_s,
        "event_steady_s": steady_s,
        "cold_speedup": ref_s / cold_s if cold_s > 0 else float("inf"),
        "steady_speedup": steady_speedup,
        "meets_target": steady_speedup >= 5.0,
        "equivalent": ok,
    }


def bench_char_matching(quick: bool) -> Dict[str, object]:
    """Packed-word fast path vs the stepwise systolic model."""
    pattern = "ABXCA"
    n = 20_000 if quick else 100_000
    text = make_text(n)

    fast = PatternMatcher(pattern, AB4)  # routes match() to FastMatcher
    step = PatternMatcher(pattern, AB4, use_fast_path=False)
    fast_s, fast_out = _timed(lambda: fast.match(text))
    step_s, step_out = _timed(lambda: step.match(text))
    oracle = match_oracle(fast.pattern, list(text))

    ok = fast_out == step_out == oracle
    speedup = step_s / fast_s if fast_s > 0 else float("inf")
    return {
        "pattern": pattern,
        "text_chars": n,
        "fast_s": fast_s,
        "stepwise_s": step_s,
        "speedup": speedup,
        "meets_target": speedup >= 20.0,
        "equivalent": ok,
    }


def bench_bit_gate_agreement(quick: bool) -> Dict[str, object]:
    """Fast path vs bit-pipelined array vs transistor netlist."""
    pattern = "AXC"
    gate_text = "ABCAACACCAB"
    bit_text = "ABCAACACCAB" * (4 if quick else 16)

    fast = FastMatcher(pattern, AB4)
    bit = BitLevelMatcher(pattern, AB4)
    gate = GateLevelMatcher(pattern, AB4)

    bit_s, bit_out = _timed(lambda: bit.match(bit_text))
    gate_s, gate_out = _timed(lambda: gate.match(gate_text))
    return {
        "pattern": pattern,
        "bit_text_chars": len(bit_text),
        "gate_text_chars": len(gate_text),
        "bit_level_s": bit_s,
        "gate_level_s": gate_s,
        "fast_eq_bit": fast.match(bit_text) == bit_out,
        "fast_eq_gate": fast.match(gate_text) == gate_out,
    }


def bench_service_throughput(quick: bool) -> Dict[str, object]:
    """Wall-clock drain rate of the farm with batched submission."""
    pattern = "ABXA"
    n_jobs = 8 if quick else 48
    doc_chars = 1_000 if quick else 4_000
    texts = [make_text(doc_chars) for _ in range(n_jobs)]

    svc = MatcherService(uniform_pool(8, ChipSpec(16, 2), AB4))
    jids = svc.submit_many(pattern, texts)
    wall_s, results = _timed(svc.drain)

    parsed = PatternMatcher(pattern, AB4).pattern
    ok = all(
        results[jid].results == match_oracle(parsed, list(text))
        for jid, text in zip(jids, texts)
    )
    chars = n_jobs * doc_chars
    return {
        "jobs": n_jobs,
        "chars_per_job": doc_chars,
        "wall_s": wall_s,
        "jobs_per_s": n_jobs / wall_s if wall_s > 0 else float("inf"),
        "chars_per_s": chars / wall_s if wall_s > 0 else float("inf"),
        "makespan_beats": max(r.finished_beat for r in results),
        "equivalent": ok,
    }


def main(argv: List[str] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--quick", action="store_true",
        help="small inputs for CI smoke runs (equivalence still checked)",
    )
    ap.add_argument(
        "--out", default="BENCH_pr2.json", help="output JSON path"
    )
    args = ap.parse_args(argv)

    report: Dict[str, object] = {
        "meta": {
            "quick": args.quick,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        }
    }
    sections = [
        ("circuit_settle", bench_circuit_settle),
        ("char_matching", bench_char_matching),
        ("bit_gate_agreement", bench_bit_gate_agreement),
        ("service_throughput", bench_service_throughput),
    ]
    failed = []
    for name, fn in sections:
        print(f"[{name}] ...", flush=True)
        section = fn(args.quick)
        report[name] = section
        eq_keys = [k for k in section if k.startswith(("equivalent", "fast_eq"))]
        if not all(section[k] for k in eq_keys):
            failed.append(name)
        for k, v in section.items():
            if isinstance(v, float):
                v = f"{v:.6g}"
            print(f"    {k}: {v}")

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    if failed:
        print(f"EQUIVALENCE FAILURES in: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
