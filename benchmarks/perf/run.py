"""Perf-regression harness for the hot paths.

Times the layers the event-driven settle and the packed-word fast path
accelerate, checks each against its slow reference bit for bit, and
writes the numbers to ``BENCH_pr7.json`` so CI can diff runs:

* ``circuit_settle`` -- the switch-level matcher (``GateLevelMatcher``)
  driven by the event engine vs :func:`repro.circuit.simulator.settle_reference`,
  cold and steady-state (warmed partition caches), same result bits.
* ``char_matching`` -- :class:`repro.core.fastpath.FastMatcher` vs the
  stepwise systolic model on a >=100 kB text (quick mode shrinks it),
  both equal to :func:`repro.core.reference.match_oracle`.
* ``bit_gate_agreement`` -- fast path vs the bit-pipelined array and the
  transistor-level netlist on the paper's example text.
* ``service_throughput`` -- wall-clock drain rate of the matcher farm
  with batched submission, results equal to the oracle.
* ``workload_kernels`` -- the packed/strided Section 3.4 kernels
  (count, correlation, inner products, convolution, FIR) vs the stepwise
  ``repro.extensions`` cell machines, values identical.
* ``workload_service`` -- mixed kernel jobs drained through the farm via
  ``submit(workload=...)``, every result equal to the workload oracle.
* ``runtime_scaling`` -- the concurrent runtime's load generator: the
  same job burst through :class:`repro.runtime.AsyncMatcherService`
  with 1 worker process vs N, real wall-clock speedup on multi-core
  machines (recorded but not asserted on single-core boxes; pass
  ``--require-scaling`` to make CI fail under 1.5x on >=2 cores).
* ``batched_kernels`` -- the multi-job kernels (pattern banks and the
  one-pattern x many-streams ``*_many`` family) vs a loop of the
  per-job fast kernels, identical rows required.
* ``batched_service`` -- the farm's coalescing ``submit_many`` batch
  tier vs per-job ``submit`` of the same jobs; the >=5x amortization
  target of the batch tier lives here.
* ``cache_hit_rate`` -- a warm pass over the cross-tenant result cache
  vs the cold pass that populated it, hits byte-identical.
* ``vector_settle`` -- :class:`repro.circuit.VectorizedCircuits`
  stepping a batch of identical netlists as one array program vs a
  loop of per-instance ``settle_reference``, same values and pass
  counts.

Run::

    PYTHONPATH=src python benchmarks/perf/run.py [--quick] [--out PATH]

Exit status is non-zero if any equivalence check fails.  Speedup targets
(>=5x steady-state settle, >=20x char matching) are recorded as
``meets_target`` booleans; the full (non-quick) run is the one that
should clear them.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Callable, Dict, List

from repro import (
    Alphabet,
    BitLevelMatcher,
    FastMatcher,
    Observability,
    PatternMatcher,
    match_oracle,
)
from repro.chip.chip import ChipSpec
from repro.circuit import simulator
from repro.circuit.chipnet import GateLevelMatcher
from repro.service import MatcherService, uniform_pool

AB4 = Alphabet("ABCD")


def _timed(fn: Callable[[], object], repeats: int = 1) -> tuple:
    """Best-of-``repeats`` wall time (min filters scheduler noise)."""
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def make_text(n_chars: int, symbols: str = "ABCD") -> str:
    """Deterministic pseudo-random text (no RNG: reproducible runs)."""
    out = []
    state = 0x2545F491
    k = len(symbols)
    for _ in range(n_chars):
        # xorshift32: cheap, stable across platforms
        state ^= (state << 13) & 0xFFFFFFFF
        state ^= state >> 17
        state ^= (state << 5) & 0xFFFFFFFF
        out.append(symbols[state % k])
    return "".join(out)


def bench_circuit_settle(quick: bool) -> Dict[str, object]:
    """Event-driven vs reference settle on the transistor-level matcher."""
    pattern = "AXC"
    text = "ABCAACACCAB" * (2 if quick else 4)
    oracle = match_oracle(PatternMatcher(pattern, AB4).pattern, list(text))

    repeats = 1 if quick else 3

    # Reference engine: monkeypatch the module-level entry point that
    # Circuit.settle re-imports per call.
    orig = simulator.settle
    simulator.settle = simulator.settle_reference
    try:
        g_ref = GateLevelMatcher(pattern, AB4)
        ref_s, ref_out = _timed(lambda: g_ref.match(text), repeats)
    finally:
        simulator.settle = orig

    g_evt = GateLevelMatcher(pattern, AB4)
    cold_s, evt_out = _timed(lambda: g_evt.match(text))
    # Re-runs on the same netlist: partition caches warmed, every beat is
    # a steady-state beat.  This is the regime a long text lives in.
    steady_s, evt_out2 = _timed(lambda: g_evt.match(text), repeats)

    ok = evt_out == ref_out == evt_out2 == oracle
    steady_speedup = ref_s / steady_s if steady_s > 0 else float("inf")
    return {
        "scale": f"GateLevelMatcher({pattern!r}, {AB4!r}), "
                 f"{g_evt.n_transistors} transistors, {len(text)} chars",
        "reference_s": ref_s,
        "event_cold_s": cold_s,
        "event_steady_s": steady_s,
        "cold_speedup": ref_s / cold_s if cold_s > 0 else float("inf"),
        "steady_speedup": steady_speedup,
        "meets_target": steady_speedup >= 5.0,
        "equivalent": ok,
    }


def bench_char_matching(quick: bool) -> Dict[str, object]:
    """Packed-word fast path vs the stepwise systolic model."""
    pattern = "ABXCA"
    n = 20_000 if quick else 100_000
    text = make_text(n)

    fast = PatternMatcher(pattern, AB4)  # routes match() to FastMatcher
    step = PatternMatcher(pattern, AB4, use_fast_path=False)
    fast_s, fast_out = _timed(lambda: fast.match(text), 1 if quick else 3)
    step_s, step_out = _timed(lambda: step.match(text))
    oracle = match_oracle(fast.pattern, list(text))

    ok = fast_out == step_out == oracle
    speedup = step_s / fast_s if fast_s > 0 else float("inf")
    return {
        "pattern": pattern,
        "text_chars": n,
        "fast_s": fast_s,
        "stepwise_s": step_s,
        "speedup": speedup,
        "meets_target": speedup >= 20.0,
        "equivalent": ok,
    }


def bench_bit_gate_agreement(quick: bool) -> Dict[str, object]:
    """Fast path vs bit-pipelined array vs transistor netlist."""
    pattern = "AXC"
    gate_text = "ABCAACACCAB"
    bit_text = "ABCAACACCAB" * (4 if quick else 16)

    fast = FastMatcher(pattern, AB4)
    bit = BitLevelMatcher(pattern, AB4)
    gate = GateLevelMatcher(pattern, AB4)

    bit_s, bit_out = _timed(lambda: bit.match(bit_text))
    gate_s, gate_out = _timed(lambda: gate.match(gate_text))
    return {
        "pattern": pattern,
        "bit_text_chars": len(bit_text),
        "gate_text_chars": len(gate_text),
        "bit_level_s": bit_s,
        "gate_level_s": gate_s,
        "fast_eq_bit": fast.match(bit_text) == bit_out,
        "fast_eq_gate": fast.match(gate_text) == gate_out,
    }


def bench_service_throughput(quick: bool) -> Dict[str, object]:
    """Wall-clock drain rate of the farm with batched submission."""
    pattern = "ABXA"
    n_jobs = 8 if quick else 48
    doc_chars = 1_000 if quick else 4_000
    texts = [make_text(doc_chars) for _ in range(n_jobs)]

    svc = MatcherService(uniform_pool(8, ChipSpec(16, 2), AB4))
    jids = svc.submit_many(pattern, texts)
    wall_s, results = _timed(svc.drain)

    parsed = PatternMatcher(pattern, AB4).pattern
    ok = all(
        results[jid].results == match_oracle(parsed, list(text))
        for jid, text in zip(jids, texts)
    )
    chars = n_jobs * doc_chars
    return {
        "jobs": n_jobs,
        "chars_per_job": doc_chars,
        "wall_s": wall_s,
        "jobs_per_s": n_jobs / wall_s if wall_s > 0 else float("inf"),
        "chars_per_s": chars / wall_s if wall_s > 0 else float("inf"),
        "makespan_beats": max(r.finished_beat for r in results),
        "equivalent": ok,
    }


def make_samples(n: int, span: int = 9) -> List[float]:
    """Deterministic integer-valued float stream (exact float64 sums)."""
    return [float(int(c, 16) % span - span // 2)
            for c in make_text(n, "0123456789abcdef")]


def bench_workload_kernels(quick: bool) -> Dict[str, object]:
    """Packed/strided Section 3.4 kernels vs the stepwise cell machines."""
    from repro.workloads import get_workload

    n = 1_000 if quick else 4_000
    text = make_text(n)
    samples = make_samples(n)
    taps = make_samples(8, span=7)
    pattern = "ABXCABCA"

    out: Dict[str, object] = {"samples": n, "window": len(taps)}
    speedups = []
    all_equal = True
    for name in ("count", "correlation", "inner-product", "convolution",
                 "fir"):
        spec = get_workload(name)
        params = pattern if name == "count" else taps
        stream = text if name == "count" else samples
        fast_s, fast_out = _timed(
            lambda: spec.run(params, stream, AB4), 1 if quick else 3
        )
        step_s, step_out = _timed(
            lambda: spec.run(params, stream, AB4, engine="stepwise")
        )
        equal = fast_out == step_out
        all_equal = all_equal and equal
        speedup = step_s / fast_s if fast_s > 0 else float("inf")
        speedups.append(speedup)
        out[name] = {
            "fast_s": fast_s,
            "stepwise_s": step_s,
            "speedup": speedup,
            "equal": equal,
        }
    out["min_speedup"] = min(speedups)
    out["meets_target"] = min(speedups) >= 5.0
    out["equivalent"] = all_equal
    return out


def bench_workload_service(quick: bool) -> Dict[str, object]:
    """Mixed Section 3.4 kernel jobs drained through the farm."""
    from repro.workloads import get_workload, list_workloads

    n_jobs = 6 if quick else 30
    doc = 500 if quick else 2_000
    names = [w for w in list_workloads() if w != "match"]
    taps = make_samples(5, span=7)
    pattern = "ABXCA"
    jobs = []
    for i in range(n_jobs):
        name = names[i % len(names)]
        numeric = get_workload(name).numeric
        jobs.append((
            name,
            taps if numeric else pattern,
            make_samples(doc + i) if numeric else make_text(doc + i),
        ))

    svc = MatcherService(uniform_pool(8, ChipSpec(16, 2), AB4))
    jids = [svc.submit(p, s, workload=name) for name, p, s in jobs]
    wall_s, results = _timed(svc.drain)
    by_id = {r.job_id: r for r in results}
    ok = all(
        by_id[jid].results
        == get_workload(name).run(p, s, AB4, engine="oracle")
        for jid, (name, p, s) in zip(jids, jobs)
    )
    values = sum(len(by_id[jid].results) for jid in jids)
    return {
        "jobs": n_jobs,
        "samples_per_job": doc,
        "wall_s": wall_s,
        "jobs_per_s": n_jobs / wall_s if wall_s > 0 else float("inf"),
        "values_per_s": values / wall_s if wall_s > 0 else float("inf"),
        "workloads": sorted(set(name for name, _, _ in jobs)),
        "equivalent": ok,
    }


def bench_runtime_scaling(quick: bool) -> Dict[str, object]:
    """Multi-core scaling of the concurrent runtime (real processes).

    Drives an identical burst of match jobs through
    :class:`repro.runtime.AsyncMatcherService` twice -- one worker
    process, then N -- and reports the wall-clock speedup.  Every
    result (both configurations) must equal the oracle.  ``meets_target``
    asserts >=1.5x, but only where scaling is physically possible
    (``cores >= 2``); single-core boxes record honest numbers with
    ``meets_target: null``.
    """
    import asyncio
    import os

    from repro.runtime import AsyncMatcherService
    from repro.workloads import get_workload

    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cores = os.cpu_count() or 1
    workers = min(4, max(2, cores))
    n_jobs = 8 if quick else 16
    doc = 60_000 if quick else 200_000
    pattern = "ABXCA"
    texts = [make_text(doc + i) for i in range(n_jobs)]

    async def drive(n_workers: int):
        async with AsyncMatcherService(n_workers, AB4) as svc:
            # Warm-up burst: every worker compiles the pattern engine
            # once, so the timed region is pure steady-state service.
            await svc.submit_many(pattern, [texts[0][:256]] * n_workers)
            await svc.drain()
            t0 = time.perf_counter()
            jids = await svc.submit_many(pattern, texts)
            results = await svc.drain()
            wall = time.perf_counter() - t0
            by_id = {r.job_id: r for r in results}
            return wall, [by_id[j].results for j in jids]

    wall_1, out_1 = asyncio.run(drive(1))
    wall_n, out_n = asyncio.run(drive(workers))

    spec = get_workload("match")
    ok = all(
        o1 == on == spec.run(pattern, t, AB4, engine="oracle")
        for o1, on, t in zip(out_1, out_n, texts)
    )
    speedup = wall_1 / wall_n if wall_n > 0 else float("inf")
    scaling_expected = cores >= 2
    return {
        "cores": cores,
        "workers": workers,
        "jobs": n_jobs,
        "chars_per_job": doc,
        "wall_1_worker_s": wall_1,
        "wall_n_workers_s": wall_n,
        "speedup": speedup,
        "scaling_expected": scaling_expected,
        "meets_target": (speedup >= 1.5) if scaling_expected else None,
        "equivalent": ok,
    }


def bench_batched_kernels(quick: bool) -> Dict[str, object]:
    """Multi-job kernels vs a loop of the per-job fast kernels."""
    from repro.core.fastpath import (
        FastMatcherBank,
        fast_inner_products,
        fast_inner_products_many,
        fast_match_many,
    )

    n = 5_000 if quick else 20_000
    n_patterns = 16
    n_texts = 16 if quick else 64
    text = make_text(n)
    patterns = [
        ("ABXC", "AXCA", "BXAC", "XACB")[i % 4] + make_text(2 + i % 3)
        for i in range(n_patterns)
    ]
    texts = [make_text(200 + 13 * i) for i in range(n_texts)]
    taps = make_samples(8, span=7)
    streams = [make_samples(200 + 13 * i) for i in range(n_texts)]
    repeats = 1 if quick else 3

    bank = FastMatcherBank(patterns, AB4)
    bank_s, bank_out = _timed(lambda: bank.match_all(text), repeats)
    loops = [FastMatcher(p, AB4) for p in patterns]
    loop_s, loop_out = _timed(lambda: [m.match(text) for m in loops], repeats)

    many_s, many_out = _timed(
        lambda: fast_match_many(patterns[0], texts, AB4), repeats
    )
    one = FastMatcher(patterns[0], AB4)
    one_s, one_out = _timed(lambda: [one.match(t) for t in texts], repeats)

    nmany_s, nmany_out = _timed(
        lambda: fast_inner_products_many(taps, streams), repeats
    )
    nloop_s, nloop_out = _timed(
        lambda: [fast_inner_products(taps, s) for s in streams], repeats
    )

    bank_speedup = loop_s / bank_s if bank_s > 0 else float("inf")
    many_speedup = one_s / many_s if many_s > 0 else float("inf")
    numeric_speedup = nloop_s / nmany_s if nmany_s > 0 else float("inf")
    return {
        "patterns": n_patterns,
        "text_chars": n,
        "batch_texts": n_texts,
        "bank_s": bank_s,
        "bank_loop_s": loop_s,
        "bank_speedup": bank_speedup,
        "many_s": many_s,
        "many_loop_s": one_s,
        "many_speedup": many_speedup,
        "numeric_many_s": nmany_s,
        "numeric_loop_s": nloop_s,
        "numeric_speedup": numeric_speedup,
        "meets_target": bank_speedup >= 2.0,
        "equivalent": bank_out == loop_out and many_out == one_out
        and nmany_out == nloop_out,
    }


def bench_batched_service(quick: bool) -> Dict[str, object]:
    """The farm's coalescing batch tier vs per-job submission.

    A batchable load -- many narrow, distinct match jobs -- is drained
    through identical farms twice: per-job ``submit`` (one parse, one
    scheduling round trip, one kernel call per job -- the BENCH_pr5
    ``workload_service`` regime) and through ``submit_many``'s batch
    planner (one parse per call, one queue entry and one multi-job
    kernel call per chunk).  Reported both ways:

    * ``in_run_speedup`` -- wall-clock ratio of the two passes on this
      box (the shared per-member completion bookkeeping bounds it);
    * ``jobs_per_s`` vs the recorded BENCH_pr5 ``workload_service``
      per-job farm throughput -- the batch tier's headline number, which
      ``meets_target`` asserts at >=5x (``meets_10x`` records the
      stretch goal) when the baseline file is present.

    The queue is sized so neither pass degrades to the software
    fallback; ``equivalent`` also asserts that.
    """
    from repro.service import SchedulerConfig

    pattern = "ABXA"
    n_jobs = 64 if quick else 256
    doc_chars = 200 if quick else 300
    repeats = 1 if quick else 3
    texts = [
        make_text(doc_chars + (i % 50)) + "ABCD"[i % 4]
        for i in range(n_jobs)
    ]
    parsed = PatternMatcher(pattern, AB4).pattern
    oracles = [match_oracle(parsed, list(t)) for t in texts]
    config = SchedulerConfig(queue_capacity=4 * n_jobs)

    def per_job_pass():
        svc = MatcherService(uniform_pool(8, ChipSpec(16, 2), AB4),
                             config=config)
        ids = [svc.submit(pattern, t) for t in texts]
        return ids, svc.drain(), svc

    def batched_pass():
        svc = MatcherService(uniform_pool(8, ChipSpec(16, 2), AB4),
                             config=config)
        ids = svc.submit_many(pattern, texts)
        return ids, svc.drain(), svc

    per_s, (per_ids, per_results, _) = _timed(per_job_pass, repeats)
    batch_s, (batch_ids, batch_results, batch_svc) = _timed(
        batched_pass, repeats
    )

    ok = all(
        batch_results[bid].results == per_results[pid].results == want
        and not per_results[pid].via_fallback
        and not batch_results[bid].via_fallback
        for bid, pid, want in zip(batch_ids, per_ids, oracles)
    )
    jobs_per_s = n_jobs / batch_s if batch_s > 0 else float("inf")
    in_run = per_s / batch_s if batch_s > 0 else float("inf")
    out: Dict[str, object] = {
        "jobs": n_jobs,
        "chars_per_job": doc_chars,
        "per_job_wall_s": per_s,
        "batched_wall_s": batch_s,
        "per_job_jobs_per_s": n_jobs / per_s
        if per_s > 0 else float("inf"),
        "batched_jobs_per_s": jobs_per_s,
        "batches": batch_svc.telemetry.batches,
        "in_run_speedup": in_run,
        "equivalent": ok,
    }
    try:
        with open("BENCH_pr5.json") as fh:
            pr5 = json.load(fh)["workload_service"]["jobs_per_s"]
    except (OSError, KeyError, ValueError):
        pr5 = None
    out["pr5_jobs_per_s"] = pr5
    if pr5:
        ratio = jobs_per_s / pr5
        out["vs_pr5_speedup"] = ratio
        out["meets_target"] = ratio >= 5.0
        out["meets_10x"] = ratio >= 10.0
    else:
        out["meets_target"] = in_run >= 2.0
    return out


def bench_cache_hit_rate(quick: bool) -> Dict[str, object]:
    """Warm cross-tenant cache pass vs the cold pass that filled it."""
    from repro.service import ResultCache

    pattern = "ABXA"
    n_jobs = 64 if quick else 128
    doc_chars = 1_024
    texts = [make_text(doc_chars + i) for i in range(n_jobs)]
    parsed = PatternMatcher(pattern, AB4).pattern

    cache = ResultCache()
    svc = MatcherService(uniform_pool(8, ChipSpec(16, 2), AB4), cache=cache)

    def run_pass(tenant):
        ids = svc.submit_many(pattern, texts, tenant=tenant)
        return ids, svc.drain()

    cold_s, (cold_ids, cold_results) = _timed(lambda: run_pass("cold"))
    warm_s, (warm_ids, warm_results) = _timed(lambda: run_pass("warm"))

    ok = all(
        warm_results[wid].results == cold_results[cid].results
        == match_oracle(parsed, list(t))
        and warm_results[wid].mode == "cached"
        for wid, cid, t in zip(warm_ids, cold_ids, texts)
    )
    stats = cache.stats()
    warm_hit_rate = stats["hits"] / n_jobs
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    return {
        "jobs": n_jobs,
        "chars_per_job": doc_chars,
        "cold_wall_s": cold_s,
        "warm_wall_s": warm_s,
        "hits": stats["hits"],
        "misses": stats["misses"],
        "warm_hit_rate": warm_hit_rate,
        "speedup": speedup,
        "meets_target": warm_hit_rate >= 0.99 and speedup >= 2.0,
        "equivalent": ok,
    }


def bench_vector_settle(quick: bool) -> Dict[str, object]:
    """Batch-stepping identical netlists vs per-instance reference."""
    from repro.circuit import HIGH, LOW, Circuit, VectorizedCircuits
    from repro.circuit.gates import inverter, nand2
    from repro.circuit.simulator import settle_reference

    B = 64 if quick else 128
    rounds = 4 if quick else 8

    def make():
        c = Circuit("cell")
        nand2(c, "a", "b", "m")
        inverter(c, "m", "p")
        nand2(c, "p", "a", "q")
        inverter(c, "q", "y")
        return c

    stim = [
        (make_text(B, "01"), make_text(B + 1, "01")[:B])
        for _ in range(rounds)
    ]

    refs = [make() for _ in range(B)]

    def drive_refs():
        counts = []
        for bits_a, bits_b in stim:
            for c, xa, xb in zip(refs, bits_a, bits_b):
                c.set_input("a", HIGH if xa == "1" else LOW)
                c.set_input("b", HIGH if xb == "1" else LOW)
                counts.append(settle_reference(c))
        return counts, [c.read("y") for c in refs]

    ref_s, (ref_counts, ref_y) = _timed(drive_refs)

    batch = VectorizedCircuits([make() for _ in range(B)])

    def drive_batch():
        counts = []
        for bits_a, bits_b in stim:
            batch.set_input("a", [HIGH if x == "1" else LOW for x in bits_a])
            batch.set_input("b", [HIGH if x == "1" else LOW for x in bits_b])
            counts.extend(batch.settle())
        return counts, batch.read("y")

    vec_s, (vec_counts, vec_y) = _timed(drive_batch)

    # Reference counts interleave per-round; regroup for comparison.
    ref_grouped = [
        ref_counts[r * B:(r + 1) * B] for r in range(rounds)
    ]
    vec_grouped = [
        vec_counts[r * B:(r + 1) * B] for r in range(rounds)
    ]
    ok = ref_grouped == vec_grouped and ref_y == vec_y
    speedup = ref_s / vec_s if vec_s > 0 else float("inf")
    return {
        "instances": B,
        "rounds": rounds,
        "reference_loop_s": ref_s,
        "vectorized_s": vec_s,
        "speedup": speedup,
        "meets_target": speedup >= 2.0,
        "equivalent": ok,
    }


def bench_obs_overhead(quick: bool, bound: float = 3.0) -> Dict[str, object]:
    """Observability cost on the two hot paths.

    The obs-off path must stay the plain hot path (attaching ``None``
    restores it exactly), and even with metrics+spans on, the slowdown
    must stay under *bound* -- the fast path publishes two counters per
    match and the settle loop two counters per call, nothing per-event.
    Results must be identical in all three configurations.
    """
    pattern = "ABXCA"
    n = 20_000 if quick else 100_000
    text = make_text(n)
    repeats = 2 if quick else 3

    off = PatternMatcher(pattern, AB4)
    off_s, off_out = _timed(lambda: off.match(text), repeats)
    on = PatternMatcher(pattern, AB4, obs=Observability())
    on_s, on_out = _timed(lambda: on.match(text), repeats)
    detached = PatternMatcher(pattern, AB4, obs=Observability())
    detached.attach_obs(None)
    det_s, det_out = _timed(lambda: detached.match(text), repeats)

    g_text = "ABCAACACCAB" * (2 if quick else 4)
    g_off = GateLevelMatcher("AXC", AB4)
    g_off.match(g_text)  # warm partition caches: compare steady state
    g_off_s, g_off_out = _timed(lambda: g_off.match(g_text), repeats)
    g_on = GateLevelMatcher("AXC", AB4)
    g_on.attach_obs(Observability())
    g_on.match(g_text)
    g_on_s, g_on_out = _timed(lambda: g_on.match(g_text), repeats)

    fast_ratio = on_s / off_s if off_s > 0 else float("inf")
    settle_ratio = g_on_s / g_off_s if g_off_s > 0 else float("inf")
    return {
        "fast_off_s": off_s,
        "fast_on_s": on_s,
        "fast_detached_s": det_s,
        "fast_obs_ratio": fast_ratio,
        "settle_off_s": g_off_s,
        "settle_on_s": g_on_s,
        "settle_obs_ratio": settle_ratio,
        "obs_bound": bound,
        "within_bound": fast_ratio <= bound and settle_ratio <= bound,
        "equivalent": off_out == on_out == det_out
        and g_off_out == g_on_out,
    }


def check_baseline(
    report: Dict[str, object], baseline_path: str, max_regression: float
) -> List[str]:
    """Compare obs-off hot-path timings against a recorded baseline.

    Returns human-readable failure strings for every watched number that
    regressed by more than *max_regression* (fractional; 0.10 = 10%).
    """
    with open(baseline_path) as fh:
        base = json.load(fh)
    watched = [
        ("char_matching", "fast_s"),
        ("circuit_settle", "event_steady_s"),
    ]
    failures = []
    for section, key in watched:
        old = base.get(section, {}).get(key)
        new = report.get(section, {}).get(key)
        if old is None or new is None:
            failures.append(f"{section}.{key}: missing from report or baseline")
            continue
        limit = old * (1.0 + max_regression)
        status = "ok" if new <= limit else "REGRESSED"
        print(
            f"[baseline] {section}.{key}: {new:.6g}s vs {old:.6g}s "
            f"(limit {limit:.6g}s) {status}"
        )
        if new > limit:
            failures.append(
                f"{section}.{key} regressed: {new:.6g}s > "
                f"{old:.6g}s * {1 + max_regression:.2f}"
            )
    return failures


def main(argv: List[str] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--quick", action="store_true",
        help="small inputs for CI smoke runs (equivalence still checked)",
    )
    ap.add_argument(
        "--out", default="BENCH_pr7.json", help="output JSON path"
    )
    ap.add_argument(
        "--sections", default=None, metavar="A,B,...",
        help="comma-separated subset of sections to run (default: all)",
    )
    ap.add_argument(
        "--require-scaling", action="store_true",
        help="fail if runtime_scaling misses 1.5x on a multi-core box",
    )
    ap.add_argument(
        "--obs-bound", type=float, default=3.0,
        help="max allowed obs-on/obs-off slowdown on the hot paths",
    )
    ap.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline BENCH json; fail on hot-path wall-time regressions",
    )
    ap.add_argument(
        "--max-regression", type=float, default=0.10,
        help="allowed fractional slowdown vs --baseline (0.10 = 10%%)",
    )
    args = ap.parse_args(argv)

    report: Dict[str, object] = {
        "meta": {
            "quick": args.quick,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        }
    }
    sections = [
        ("circuit_settle", bench_circuit_settle),
        ("char_matching", bench_char_matching),
        ("bit_gate_agreement", bench_bit_gate_agreement),
        ("service_throughput", bench_service_throughput),
        ("workload_kernels", bench_workload_kernels),
        ("workload_service", bench_workload_service),
        ("runtime_scaling", bench_runtime_scaling),
        ("batched_kernels", bench_batched_kernels),
        ("batched_service", bench_batched_service),
        ("cache_hit_rate", bench_cache_hit_rate),
        ("vector_settle", bench_vector_settle),
        ("obs_overhead",
         lambda quick: bench_obs_overhead(quick, args.obs_bound)),
    ]
    if args.sections:
        wanted = {s.strip() for s in args.sections.split(",") if s.strip()}
        unknown = wanted - {name for name, _ in sections}
        if unknown:
            ap.error(f"unknown sections: {', '.join(sorted(unknown))}")
        sections = [(n, f) for n, f in sections if n in wanted]
    failed = []
    for name, fn in sections:
        print(f"[{name}] ...", flush=True)
        section = fn(args.quick)
        report[name] = section
        eq_keys = [k for k in section if k.startswith(("equivalent", "fast_eq"))]
        if not all(section[k] for k in eq_keys):
            failed.append(name)
        for k, v in section.items():
            if isinstance(v, float):
                v = f"{v:.6g}"
            print(f"    {k}: {v}")
    if "obs_overhead" in report \
            and not report["obs_overhead"]["within_bound"]:
        failed.append("obs_overhead (slowdown over --obs-bound)")
    if args.require_scaling and "runtime_scaling" in report:
        scaling = report["runtime_scaling"]
        if scaling["scaling_expected"] and not scaling["meets_target"]:
            failed.append("runtime_scaling (speedup under 1.5x target)")
        elif not scaling["scaling_expected"]:
            print("[runtime_scaling] single-core box: "
                  "speedup recorded, target not enforced")

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")

    if args.baseline:
        for line in check_baseline(report, args.baseline,
                                   args.max_regression):
            print(f"PERF REGRESSION: {line}", file=sys.stderr)
            failed.append("baseline")

    if failed:
        print(f"FAILURES in: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
