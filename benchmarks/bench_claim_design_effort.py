"""C-effort: the design-economics claim of Sections 2 and 5.

Regenerates "the design of the pattern matching chip took only about two
man-months" and the scaling argument: regular (replicated-cell) designs
stay cheap as chips grow; bespoke designs do not.
"""

from repro.analysis import Table
from repro.chip.prototype import DESIGN_EFFORT_MAN_MONTHS
from repro.methodology.tasks import figure_4_1_graph
from repro.timing import DesignEffortModel


def test_claim_two_man_months():
    model = DesignEffortModel()
    weeks = model.prototype_weeks()
    print(f"\nmodelled prototype effort: {weeks:.1f} weeks; "
          f"paper: ~{DESIGN_EFFORT_MAN_MONTHS} man-months (~8.7 weeks)")
    assert abs(weeks - DESIGN_EFFORT_MAN_MONTHS * 4.33) < 3.0


def test_claim_regularity_collapses_cost(benchmark):
    model = DesignEffortModel()

    def sweep():
        rows = []
        for cells in (24, 96, 384, 1536):
            rows.append(
                (cells,
                 model.regular_design_weeks(4, cells),
                 model.irregular_design_weeks(cells))
            )
        return rows

    rows = benchmark(sweep)
    table = Table(["cell instances", "regular (wk)", "irregular (wk)"],
                  title="Section 2: design effort vs chip size")
    for r in rows:
        table.row(list(r))
    print()
    table.print()
    # regular nearly flat; irregular linear
    assert rows[-1][1] < 3 * rows[0][1]
    assert rows[-1][2] > 50 * rows[0][1]


def test_claim_critical_path_is_algorithm_heavy():
    path, total = figure_4_1_graph().critical_path()
    algorithm_share = 3.0 / total
    print(f"\nalgorithm design is {algorithm_share:.0%} of the "
          f"critical path ({total} weeks)")
    assert algorithm_share > 0.3
