"""F1-1: Figure 1-1 -- special-purpose chips on a general-purpose host.

Regenerates the figure's system: a host with pattern matcher, FFT device
and sorter attached, streaming jobs over the bus, with the 1979 memory
bandwidth comparison.
"""

import numpy as np

from repro import Alphabet
from repro.analysis import Table
from repro.chip.chip import ChipSpec
from repro.host import HostSpec, HostSystem
from repro.host.devices import FFTDevice, PatternMatcherDevice, SystolicSorterDevice

from conftest import random_text


def build_system():
    system = HostSystem(HostSpec())
    system.attach(SystolicSorterDevice(n_cells=128))
    system.attach(FFTDevice(block_size=64))
    matcher = PatternMatcherDevice(ChipSpec(8, 2), Alphabet("ABCD"))
    matcher.load_pattern("AXCDABXD")
    system.attach(matcher)
    return system


def run_mixed_workload(system):
    rng = np.random.default_rng(11)
    text = random_text(400, seed=12)
    bits = system.run("pattern-matcher", text)
    spectrum = system.run("fft", list(rng.normal(size=128)))
    ranked = system.run("sorter", list(rng.normal(size=100)))
    return bits, spectrum, ranked


def test_fig_1_1_mixed_workload(benchmark):
    system = build_system()
    bits, spectrum, ranked = benchmark(run_mixed_workload, system)
    assert ranked == sorted(ranked)
    assert len(spectrum) == 128
    assert any(bits) or not any(bits)  # well-formed bit stream
    table = Table(["device", "items", "device us", "bus us"],
                  title="Figure 1-1 workload accounting")
    for job in system.jobs[:3]:
        table.row([job.device, job.n_items, job.device_ns / 1000,
                   job.transfer_ns / 1000])
    print()
    table.print()


def test_fig_1_1_memory_bandwidth_comparison():
    """The chip outruns the 1979 minicomputer memory that feeds it."""
    system = build_system()
    assert system.bus.is_device_starved(250.0)
    chip_rate = 1e9 / 250.0
    mem_rate = system.host.memory_bandwidth_chars_per_s()
    print(f"\nchip appetite {chip_rate/1e6:.1f} Mchar/s vs host memory "
          f"{mem_rate/1e6:.1f} Mchar/s -> chip is faster "
          f"by {chip_rate/mem_rate:.1f}x")
    assert chip_rate > mem_rate
