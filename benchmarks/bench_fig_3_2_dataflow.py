"""F3-2: Figure 3-2 -- the beat-by-beat character choreography.

Regenerates the figure: records a trace of the opposing streams, renders
the character-flow diagram, and asserts the choreography (alternate cells
idle; each cell meets consecutive pattern/string pairs).
"""

from repro import Alphabet, parse_pattern
from repro.core.array import SystolicMatcherArray
from repro.streams import RecirculatingPattern
from repro.systolic.tracing import TraceRecorder, render_flow


def run_traced(ab, n_cells=4, text="ABCDABCD"):
    rec = TraceRecorder()
    arr = SystolicMatcherArray(n_cells, recorder=rec)
    items = RecirculatingPattern(parse_pattern("ABCD", ab)).items
    arr.run(items, text)
    return rec


def test_fig_3_2_choreography(ab4, benchmark):
    rec = benchmark(run_traced, ab4)
    # alternate cells idle on every beat
    for row in rec.activity_matrix():
        for i in range(len(row) - 1):
            assert not (row[i] and row[i + 1])
    # each cell advances one pattern char and one text char per firing
    per_cell = {}
    for beat, cell, p, s in rec.meetings("p", "s"):
        per_cell.setdefault(cell, []).append((beat, s.index))
    for meetings in per_cell.values():
        for (b1, q1), (b2, q2) in zip(meetings, meetings[1:]):
            assert (b2 - b1, q2 - q1) == (2, 1)

    print()
    print(render_flow(
        TraceRecorderSlice(rec, 8, 16), ["p", "s"],
        fmt=lambda v: str(v)[:3],
    ))


class TraceRecorderSlice:
    """A window of a recorder's beats, for compact figure rendering."""

    def __init__(self, rec, start, stop):
        self.beats = rec.beats[start:stop]
