"""F3-7: Figure 3-7 -- the five-chip cascade.

Regenerates the figure's claims: k chips of n cells form a single linear
array matching patterns up to kn characters, results from the leftmost
chip, at an unchanged data rate.
"""

from repro import Alphabet, match_oracle, parse_pattern
from repro.analysis import Table
from repro.chip import ChipCascade
from repro.chip.chip import ChipSpec

from conftest import random_pattern, random_text


def cascade_match(n_chips, pattern, text, ab):
    casc = ChipCascade(ChipSpec(8, 2), n_chips, ab)
    casc.load_pattern(pattern)
    return casc.match(text)


def test_fig_3_7_five_chip_capacity(ab4, benchmark):
    pattern = random_pattern(40, seed=7)       # 5 chips x 8 cells, full
    text = random_text(300, seed=8)
    results = benchmark(cascade_match, 5, pattern, text, ab4)
    assert results == match_oracle(parse_pattern(pattern, ab4), list(text))


def test_fig_3_7_capacity_scales_rate_does_not(ab4):
    table = Table(["chips", "capacity", "Mchar/s", "beats for 1000 chars"],
                  title="Figure 3-7: cascade scaling")
    spec = ChipSpec(8, 2)
    rates = []
    for k in (1, 2, 3, 5):
        casc = ChipCascade(spec, k, ab4)
        rate = casc.data_rate_chars_per_s() / 1e6
        rates.append(rate)
        table.row([k, casc.capacity, rate, casc.beats_for_text(1000)])
    print()
    table.print()
    assert len(set(rates)) == 1                       # rate unchanged
    assert ChipCascade(spec, 5, ab4).capacity == 40   # kn cells
