"""X-count / X-corr / X-conv: the Section 3.4 extension machines.

Regenerates the section's claim that counting, correlation, convolution
and FIR filtering run on the matcher's data flow with only the cell
function changed, each verified against its oracle.
"""

import numpy as np

from repro import count_oracle, parse_pattern
from repro.core.reference import correlation_oracle
from repro.extensions import (
    systolic_convolution,
    systolic_correlation,
    systolic_fir,
    systolic_match_counts,
)
from repro.extensions.fir import fir_oracle

from conftest import random_pattern, random_text


def test_sec_3_4_counting(ab4, benchmark):
    pattern = random_pattern(6, seed=20)
    text = random_text(800, seed=21)
    counts = benchmark(systolic_match_counts, pattern, text, ab4)
    assert counts == count_oracle(parse_pattern(pattern, ab4), list(text))


def test_sec_3_4_correlation(benchmark):
    rng = np.random.default_rng(22)
    pattern = list(rng.normal(size=8))
    signal = list(rng.normal(size=600))
    out = benchmark(systolic_correlation, pattern, signal)
    assert np.allclose(out, correlation_oracle(pattern, signal))
    # perfect alignment scores ~0: plant the pattern and find it
    planted = signal[:100] + pattern + signal[100:200]
    scores = systolic_correlation(pattern, planted)
    assert int(np.argmin(scores[7:])) + 7 == 107  # window ending there


def test_sec_3_4_convolution(benchmark):
    rng = np.random.default_rng(23)
    kernel = list(rng.normal(size=6))
    signal = list(rng.normal(size=500))
    out = benchmark(systolic_convolution, kernel, signal)
    assert np.allclose(out, np.convolve(kernel, signal), atol=1e-8)


def test_sec_3_4_fir(benchmark):
    rng = np.random.default_rng(24)
    taps = list(rng.normal(size=5))
    signal = list(rng.normal(size=500))
    out = benchmark(systolic_fir, taps, signal)
    assert np.allclose(out, fir_oracle(taps, signal), atol=1e-8)


def test_sec_3_4_multipass(ab4, benchmark):
    """Long patterns on a small system via delayed re-runs."""
    from repro import match_oracle, multipass_match

    pattern = parse_pattern(random_pattern(24, seed=25), ab4)
    text = list(random_text(300, seed=26))
    out = benchmark(multipass_match, pattern, text, 8)
    assert out == match_oracle(pattern, text)
