"""F3-6: Figure 3-6 -- the positive comparator circuit.

Regenerates the figure at switch level: three clocked pass transistors,
two inverters, the XNOR equality gate and the NAND, in both twins, and
checks the circuit against the cell algorithm exhaustively.
"""

from repro.circuit.cells.comparator import COMPARATOR_DEVICES, build_comparator
from repro.circuit.netlist import Circuit
from repro.circuit.signals import HIGH, LOW
from repro.analysis import Table


def exhaustive_truth_table(positive=True):
    c = Circuit()
    ports = build_comparator(c, "u.", "clk", positive=positive)
    rows = []
    for p in (0, 1):
        for s in (0, 1):
            for d in (0, 1):
                ins = (p, s, d) if positive else (1 - p, 1 - s, 1 - d)
                c.set_input(ports["p_in"], ins[0])
                c.set_input(ports["s_in"], ins[1])
                c.set_input(ports["d_in"], ins[2])
                c.set_input("clk", HIGH)
                c.settle()
                c.set_input("clk", LOW)
                c.settle()
                rows.append(
                    (p, s, d, c.read_bool(ports["d_out"]))
                )
    return c, rows


def test_fig_3_6_positive_comparator(benchmark):
    c, rows = benchmark(exhaustive_truth_table, True)
    table = Table(["p", "s", "d_in", "d_out_bar"],
                  title="Figure 3-6 positive comparator (switch level)")
    for p, s, d, do in rows:
        assert do == (not (d and p == s))
        table.row([p, s, d, int(do)])
    print()
    table.print()
    print(f"devices: {c.n_transistors} (four gates + three clocked passes)")
    assert c.n_transistors == COMPARATOR_DEVICES


def test_fig_3_6_negative_twin():
    _, rows = exhaustive_truth_table(False)
    for p, s, d, do in rows:
        assert do == (d and p == s)
