"""F3-1: Figure 3-1 -- the chip's I/O contract and the AXC example.

Regenerates the figure's data: pattern AXC over the example text sets
result bits exactly where A?C windows end, and measures the behavioural
chip's streaming throughput.
"""

from repro import PatternMatcher, match_oracle
from repro.analysis import Table

from conftest import random_text

TEXT = "ABCAACACCAB"

#: The figure's own text prefix: matches end at r2, r5 and r6 (the
#: overlapping substrings ABC, AAC, ACC of s0..s6 = A B C A A C C).
PAPER_TEXT = "ABCAACC"


def test_fig_3_1_paper_text_sets_r2_r5_r6(ab4):
    matcher = PatternMatcher("AXC", ab4)
    results = matcher.match(PAPER_TEXT)
    assert [i for i, r in enumerate(results) if r] == [2, 5, 6]


def test_fig_3_1_example_bits(ab4, benchmark):
    matcher = PatternMatcher("AXC", ab4)
    results = benchmark(matcher.match, TEXT)
    assert [i for i, r in enumerate(results) if r] == [2, 5, 8]

    table = Table(["i", "char", "window", "r_i"], title="Figure 3-1: pattern AXC")
    for i, (c, r) in enumerate(zip(TEXT, results)):
        window = TEXT[max(0, i - 2) : i + 1] if i >= 2 else "-"
        table.row([i, c, window, int(r)])
    print()
    table.print()


def test_fig_3_1_streaming_throughput(ab4, benchmark):
    matcher = PatternMatcher("AXC", ab4)
    text = random_text(2000)
    results = benchmark(matcher.match, text)
    assert results == match_oracle(matcher.pattern, list(text))
