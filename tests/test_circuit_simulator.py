"""Switch-level solver: gates, strengths, charge, pathologies."""

import pytest

from repro.circuit import Circuit, GND, VDD, HIGH, LOW, UNKNOWN
from repro.circuit.gates import inverter, nand2, nand3, nor2, pass_transistor, xnor_from_rails
from repro.circuit.signals import Strength, from_bool, resolve, to_bool
from repro.errors import ChargeDecayError, CircuitError


class TestSignals:
    def test_resolve_strength_order(self):
        v, s = resolve(HIGH, Strength.LOAD, LOW, Strength.PULL)
        assert (v, s) == (LOW, Strength.PULL)  # ratioed: pulldown wins

    def test_resolve_conflict_gives_unknown(self):
        v, _ = resolve(HIGH, Strength.PULL, LOW, Strength.PULL)
        assert v is UNKNOWN

    def test_bool_conversions(self):
        assert to_bool(from_bool(True))
        with pytest.raises(ValueError):
            to_bool(UNKNOWN)


class TestGates:
    @staticmethod
    def settle_inputs(c, assignments):
        for node, value in assignments.items():
            c.set_input(node, value)
        c.settle()

    def test_inverter_truth_table(self):
        c = Circuit()
        inverter(c, "a", "out")
        for a in (0, 1):
            self.settle_inputs(c, {"a": a})
            assert c.read_bool("out") == (not a)

    def test_nand2_truth_table(self):
        c = Circuit()
        nand2(c, "a", "b", "out")
        for a in (0, 1):
            for b in (0, 1):
                self.settle_inputs(c, {"a": a, "b": b})
                assert c.read_bool("out") == (not (a and b)), (a, b)

    def test_nand3_truth_table(self):
        c = Circuit()
        nand3(c, "a", "b", "d", "out")
        for bits in range(8):
            a, b, d = bits & 1, (bits >> 1) & 1, (bits >> 2) & 1
            self.settle_inputs(c, {"a": a, "b": b, "d": d})
            assert c.read_bool("out") == (not (a and b and d))

    def test_nor2_truth_table(self):
        c = Circuit()
        nor2(c, "a", "b", "out")
        for a in (0, 1):
            for b in (0, 1):
                self.settle_inputs(c, {"a": a, "b": b})
                assert c.read_bool("out") == (not (a or b))

    def test_xnor_truth_table(self):
        c = Circuit()
        inverter(c, "a", "ab")
        inverter(c, "b", "bb")
        xnor_from_rails(c, "a", "ab", "b", "bb", "out")
        for a in (0, 1):
            for b in (0, 1):
                self.settle_inputs(c, {"a": a, "b": b})
                assert c.read_bool("out") == (a == b)

    def test_gate_composition(self):
        """AND from NAND + inverter."""
        c = Circuit()
        nand2(c, "a", "b", "n")
        inverter(c, "n", "out")
        for a in (0, 1):
            for b in (0, 1):
                self.settle_inputs(c, {"a": a, "b": b})
                assert c.read_bool("out") == (a and b)


class TestPassTransistorsAndCharge:
    def test_pass_transistor_conducts_when_gated(self):
        c = Circuit()
        pass_transistor(c, "g", "a", "b")
        c.set_input("a", HIGH)
        c.set_input("g", HIGH)
        c.settle()
        assert c.read("b") is HIGH

    def test_charge_retained_when_isolated(self):
        c = Circuit()
        pass_transistor(c, "g", "a", "st")
        inverter(c, "st", "out")
        c.set_input("a", HIGH)
        c.set_input("g", HIGH)
        c.settle()
        c.set_input("g", LOW)
        c.settle()  # isolate first (gate and data must not race)
        c.set_input("a", LOW)  # input changes; stored bit must not
        c.settle()
        assert c.read("st") is HIGH
        assert c.read("out") is LOW

    def test_charge_decays_after_retention(self):
        c = Circuit(retention_ns=1000.0)
        pass_transistor(c, "g", "a", "st")
        c.set_input("a", HIGH)
        c.set_input("g", HIGH)
        c.settle()
        c.set_input("g", LOW)
        c.settle()
        c.advance_time(2000.0)
        c.settle()
        assert c.read("st") is UNKNOWN

    def test_strict_decay_raises(self):
        from repro.circuit.simulator import settle

        c = Circuit(retention_ns=1000.0)
        pass_transistor(c, "g", "a", "st")
        c.set_input("a", HIGH)
        c.set_input("g", HIGH)
        c.settle()
        c.set_input("g", LOW)
        c.settle()
        c.advance_time(2000.0)
        with pytest.raises(ChargeDecayError):
            settle(c, strict_decay=True)

    def test_strict_decay_passes_through_circuit_settle(self):
        # Regression: Circuit.settle() used to drop strict_decay on the
        # way to the simulator, silently downgrading strict reads.
        c = Circuit(retention_ns=1000.0)
        pass_transistor(c, "g", "a", "st")
        c.set_input("a", HIGH)
        c.set_input("g", HIGH)
        c.settle()
        c.set_input("g", LOW)
        c.settle()
        c.advance_time(2000.0)
        with pytest.raises(ChargeDecayError):
            c.settle(strict_decay=True)

    def test_refresh_resets_decay_clock(self):
        c = Circuit(retention_ns=1000.0)
        pass_transistor(c, "g", "a", "st")
        c.set_input("a", HIGH)
        for _ in range(5):
            c.set_input("g", HIGH)
            c.settle()
            c.set_input("g", LOW)
            c.settle()
            c.advance_time(800.0)  # refreshed each cycle: never decays
        c.settle()
        assert c.read("st") is HIGH

    def test_charge_sharing_conflict_is_unknown(self):
        c = Circuit()
        pass_transistor(c, "g1", "a", "n1")
        pass_transistor(c, "g2", "b", "n2")
        pass_transistor(c, "join", "n1", "n2")
        c.set_input("a", HIGH)
        c.set_input("b", LOW)
        c.set_input("g1", HIGH)
        c.set_input("g2", HIGH)
        c.settle()
        c.set_input("g1", LOW)
        c.set_input("g2", LOW)
        c.settle()
        c.set_input("join", HIGH)  # share opposite charges
        c.settle()
        assert c.read("n1") is UNKNOWN
        assert c.read("n2") is UNKNOWN


class TestPathologies:
    def test_ring_oscillator_detected(self):
        c = Circuit("ring")
        inverter(c, "a", "b")
        inverter(c, "b", "c")
        inverter(c, "c", "a")
        c.set_input("a", HIGH)
        c.settle()
        c.release_input("a")
        with pytest.raises(CircuitError):
            c.settle(max_iterations=20)

    def test_forced_node_fighting_its_own_pulldown_stays_local(self):
        """A drive fight at one node must not poison the GND network:
        the rail wins component resolution, the pin stays pinned."""
        c = Circuit()
        inverter(c, "a", "b")   # b fights: pulled low when a high
        inverter(c, "x", "y")   # unrelated gate sharing the GND rail
        c.set_input("a", HIGH)
        c.set_input("b", HIGH)  # fight at b
        c.set_input("x", HIGH)
        c.settle()
        assert c.read("y") is LOW  # unharmed by the fight at b

    def test_vdd_gnd_short_reads_unknown(self):
        c = Circuit()
        c.add_enhancement("g", VDD, "n")
        c.add_enhancement("g", "n", GND)
        c.set_input("g", HIGH)
        c.settle()
        assert c.read("n") is UNKNOWN

    def test_unknown_node_name_rejected(self):
        with pytest.raises(CircuitError):
            Circuit().read("nowhere")

    def test_bad_input_value_rejected(self):
        with pytest.raises(CircuitError):
            Circuit().set_input("a", "banana")

    def test_time_cannot_reverse(self):
        with pytest.raises(CircuitError):
            Circuit().advance_time(-1)


class TestNetlistUtilities:
    def test_device_count(self):
        c = Circuit()
        nand2(c, "a", "b", "out")
        assert c.n_transistors == 3  # pullup + two pulldowns

    def test_merge_instantiates_subcircuit(self):
        sub = Circuit("inv")
        inverter(sub, "in", "out")
        top = Circuit("top")
        m1 = top.merge(sub, prefix="u1.")
        m2 = top.merge(sub, prefix="u2.", connections={"in": "u1.out"})
        top.set_input("u1.in", LOW)
        top.settle()
        assert top.read_bool(m1["out"]) is True
        assert top.read_bool(m2["out"]) is False
