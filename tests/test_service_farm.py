"""The matcher-farm service layer: pool, scheduler, sharding, reliability."""

import pytest

from repro import Alphabet, match_oracle, parse_pattern
from repro.chip.cascade import ChipCascade
from repro.chip.chip import ChipSpec, PatternMatchingChip
from repro.errors import BackpressureError, ServiceError
from repro.host.bus import HostSpec
from repro.service import (
    BoundedQueue,
    DevicePool,
    Fault,
    FaultInjector,
    FaultKind,
    JobQueues,
    MatcherService,
    PoolWorker,
    Priority,
    RetryPolicy,
    SchedulerConfig,
    SharedBus,
    ShardMode,
    SoftwareFallback,
    WorkerState,
    cascade_pool,
    merge_shard_results,
    plan_shards,
    pool_from_wafers,
    uniform_pool,
)
from repro.service.scheduler import BeatClock
from repro.timing.model import TimingModel
from repro.wafer.wafer import Wafer

AB = Alphabet("ABCD")


class ScriptedInjector(FaultInjector):
    """Deterministic fault sequence for targeted failure tests."""

    def __init__(self, faults):
        super().__init__()
        self._faults = list(faults)

    def sample(self):
        return self._faults.pop(0) if self._faults else None


def oracle(pattern, text):
    return match_oracle(parse_pattern(pattern, AB), list(text))


# -- pool ---------------------------------------------------------------------


class TestPool:
    def test_worker_from_chip_and_cascade(self):
        chip = PoolWorker.from_chip("c", PatternMatchingChip(ChipSpec(8, 2), AB))
        assert chip.capacity == 8 and not chip.is_degraded and chip.is_live
        casc = PoolWorker.from_cascade("k", ChipCascade(ChipSpec(8, 2), 3, AB))
        assert casc.capacity == 24  # kn cells, Figure 3-7

    def test_worker_from_healthy_wafer(self):
        w = PoolWorker.from_wafer("w", Wafer(2, 8), AB)
        assert w.capacity == 16 and not w.is_degraded

    def test_worker_from_defective_wafer_is_degraded(self):
        wafer = Wafer(2, 8)
        wafer.mark_defective(0, 3)
        w = PoolWorker.from_wafer("w", wafer, AB)
        assert w.capacity == 15 and w.is_degraded and w.is_live

    def test_unharvestable_wafer_is_dead_not_fatal(self):
        wafer = Wafer(1, 6)
        for c in range(6):
            wafer.mark_defective(0, c)  # defect run beyond the bypass budget
        w = PoolWorker.from_wafer("w", wafer, AB)
        assert w.capacity == 0 and w.state is WorkerState.DEAD
        with pytest.raises(ServiceError):
            w.run_match(parse_pattern("A", AB), "ABAB")

    def test_run_match_direct_and_multipass_equal_oracle(self):
        w = PoolWorker.from_chip("c", PatternMatchingChip(ChipSpec(4, 2), AB))
        text = "ABCADBCABADCBA".replace("D", "A")
        short = parse_pattern("AXC", AB)
        assert w.run_match(short, text) == match_oracle(short, list(text))
        long = parse_pattern("ABXABA", AB)  # longer than 4 cells -> multipass
        assert w.run_match(long, text) == match_oracle(long, list(text))

    def test_service_beats_trace_to_timing_model(self):
        w = PoolWorker.from_chip("c", PatternMatchingChip(ChipSpec(8, 2), AB))
        t = TimingModel(250.0)
        assert w.service_beats(4, 100) * 250.0 == t.single_chip_run_ns(100, 8)
        assert (
            w.service_beats(20, 100) * 250.0
            == t.multipass_run_ns(100, 8, 20)
        )
        assert w.service_beats(4, 0) == 0

    def test_transfer_chars_multipass_restreams(self):
        w = PoolWorker.from_chip("c", PatternMatchingChip(ChipSpec(4, 2), AB))
        assert w.transfer_chars(3, 100) == 300  # 2 in + 1 back per text char
        assert w.transfer_chars(9, 100) > w.transfer_chars(3, 100)

    def test_pool_validation(self):
        with pytest.raises(ServiceError):
            DevicePool([])
        a = PoolWorker.from_chip("a", PatternMatchingChip(ChipSpec(4, 2), AB))
        b = PoolWorker.from_chip("a", PatternMatchingChip(ChipSpec(4, 2), AB))
        with pytest.raises(ServiceError):
            DevicePool([a, b])  # duplicate names
        other = PoolWorker.from_chip(
            "b", PatternMatchingChip(ChipSpec(4, 3), Alphabet("ABCDEFGH"))
        )
        with pytest.raises(ServiceError):
            DevicePool([a, other])  # mixed alphabets

    def test_pool_from_wafers_mixed_health(self):
        dead = Wafer(1, 6)
        for c in range(6):
            dead.mark_defective(0, c)
        degraded = Wafer(2, 4)
        degraded.mark_defective(1, 1)
        pool = pool_from_wafers([Wafer(2, 4), degraded, dead], AB)
        assert len(pool) == 3 and pool.n_live == 2
        assert pool.worker("wafer-1").is_degraded
        assert pool.total_capacity == 8 + 7


# -- scheduler ---------------------------------------------------------------


class TestScheduler:
    def test_bounded_queue_backpressure(self):
        q = BoundedQueue(2)
        q.put("a", 1)
        q.put("a", 2)
        with pytest.raises(BackpressureError):
            q.put("a", 3)
        q.put("a", 3, force=True)  # retries bypass the bound
        assert len(q) == 3

    def test_tenant_round_robin(self):
        q = BoundedQueue(10)
        for j in ("a1", "a2", "a3"):
            q.put("alice", j)
        q.put("bob", "b1")
        assert [q.pop() for _ in range(4)] == ["a1", "b1", "a2", "a3"]
        assert q.pop() is None

    def test_put_front_requeues_ahead(self):
        q = BoundedQueue(10)
        q.put("a", "first")
        q.put_front("a", "retry")
        assert q.pop() == "retry"

    def test_priority_classes_drain_in_order(self):
        jq = JobQueues(SchedulerConfig(queue_capacity=4))
        jq.put(Priority.BATCH, "t", "slow")
        jq.put(Priority.INTERACTIVE, "t", "fast")
        assert jq.pop() == "fast"
        assert jq.pop() == "slow"
        assert jq.high_water[Priority.BATCH] == 1

    def test_shared_bus_serializes_and_accounts(self):
        bus = SharedBus(HostSpec(memory_cycle_ns=600.0, bytes_per_word=2), 250.0)
        assert bus.per_char_beats == pytest.approx(1.2)
        done1 = bus.reserve(100, now=0.0)
        done2 = bus.reserve(100, now=0.0)  # queued behind the first stream
        assert done2 == pytest.approx(2 * done1)
        assert bus.chars_moved == 200

    def test_clock_is_monotonic(self):
        clk = BeatClock()
        clk.advance_to(10.0)
        with pytest.raises(ServiceError):
            clk.advance_to(5.0)

    def test_config_validation(self):
        with pytest.raises(ServiceError):
            SchedulerConfig(queue_capacity=0)
        with pytest.raises(ServiceError):
            SchedulerConfig(max_retries=-1)


# -- sharding ----------------------------------------------------------------


class TestSharding:
    def test_short_text_stays_whole(self):
        plan = plan_shards(4, 40, n_workers=4, min_shard_chars=64)
        assert plan.mode is ShardMode.DIRECT and plan.n_shards == 1

    def test_wide_text_sharded_with_overlap(self):
        plan = plan_shards(5, 400, n_workers=4, min_shard_chars=64)
        assert plan.mode is ShardMode.TEXT_SHARDED and plan.n_shards == 4
        k = 4
        for left, right in zip(plan.shards, plan.shards[1:]):
            assert right.out_lo == left.out_hi + 1       # contiguous ownership
            assert right.feed_start == right.out_lo - k  # k-char overlap
        assert plan.shards[0].feed_start == 0
        assert plan.shards[-1].out_hi == 399

    def test_merge_equals_oracle(self):
        pattern = parse_pattern("ABXA", AB)
        text = ("ABCA" * 60)[:230]
        plan = plan_shards(len(pattern), len(text), 3, min_shard_chars=16)
        per_shard = [
            match_oracle(pattern, list(shard.feed(text)))
            for shard in plan.shards
        ]
        merged = merge_shard_results(plan.shards, per_shard, len(text))
        assert merged == match_oracle(pattern, list(text))

    def test_merge_rejects_inconsistent_streams(self):
        plan = plan_shards(3, 200, 2, min_shard_chars=16)
        with pytest.raises(ServiceError):
            merge_shard_results(plan.shards, [[False]], 200)
        bad = [[False] * plan.shards[0].n_fed, [False]]
        with pytest.raises(ServiceError):
            merge_shard_results(plan.shards, bad, 200)


# -- reliability -------------------------------------------------------------


class TestReliability:
    def test_injector_deterministic_per_seed(self):
        a = FaultInjector(seed=3, p_death=0.3, p_stuck=0.3)
        b = FaultInjector(seed=3, p_death=0.3, p_stuck=0.3)
        assert [a.sample() for _ in range(50)] == [b.sample() for _ in range(50)]

    def test_injector_validation(self):
        with pytest.raises(ServiceError):
            FaultInjector(p_death=0.7, p_stuck=0.7)
        with pytest.raises(ServiceError):
            FaultInjector(p_death=-0.1)

    def test_retry_policy(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.should_retry(1) and policy.should_retry(2)
        assert not policy.should_retry(3)

    def test_software_fallback_equals_oracle_and_costs_host_time(self):
        fb = SoftwareFallback(HostSpec())
        pattern = parse_pattern("AXCA", AB)
        text = list("ABCAACACCABACA")
        assert fb.match(pattern, text) == match_oracle(pattern, text)
        beats = fb.beats(4, 100, 250.0)
        assert beats * 250.0 == HostSpec().software_match_time_ns(100, 4)


# -- the service -------------------------------------------------------------


class TestMatcherService:
    def test_basic_drain_equals_oracle(self):
        svc = MatcherService(uniform_pool(2, ChipSpec(8, 2), AB))
        jid = svc.submit("AXC", "ABCAACACCAB")
        results = svc.drain()
        assert results[jid].results == oracle("AXC", "ABCAACACCAB")
        assert results[jid].mode == "direct" and not results[jid].via_fallback

    def test_empty_text_job(self):
        svc = MatcherService(uniform_pool(1, ChipSpec(8, 2), AB))
        jid = svc.submit("AB", "")
        r = svc.drain()[jid]
        assert r.results == [] and r.service_beats == 0

    def test_submit_many_batches_one_job_per_text(self):
        svc = MatcherService(uniform_pool(2, ChipSpec(8, 2), AB))
        texts = ["ABCAACACCAB", "AACCA", "", "ABCABC"]
        jids = svc.submit_many("AXC", texts, tenant="alice")
        assert jids == sorted(jids) and len(jids) == len(texts)
        results = svc.drain()
        for jid, text in zip(jids, texts):
            assert results[jid].results == oracle("AXC", text)
            assert results[jid].tenant == "alice"

    def test_long_pattern_routes_through_multipass(self):
        svc = MatcherService(uniform_pool(1, ChipSpec(4, 2), AB))
        pattern, text = "ABCABX", "ABCABAABCABBABCABC"
        jid = svc.submit(pattern, text)
        r = svc.drain()[jid]
        assert r.mode == "multipass"
        assert r.results == oracle(pattern, text)

    def test_wide_text_sharded_across_workers(self):
        config = SchedulerConfig(wide_text_threshold=64, min_shard_chars=16)
        svc = MatcherService(uniform_pool(4, ChipSpec(8, 2), AB), config=config)
        pattern, text = "ABXA", "ABCA" * 40
        jid = svc.submit(pattern, text)
        r = svc.drain()[jid]
        assert r.mode == "text-sharded" and len(set(r.workers)) == 4
        assert r.results == oracle(pattern, text)

    def test_interactive_beats_batch(self):
        svc = MatcherService(uniform_pool(1, ChipSpec(8, 2), AB))
        batch = svc.submit("AB", "ABAB" * 20, priority=Priority.BATCH)
        inter = svc.submit("BA", "ABAB" * 20, priority=Priority.INTERACTIVE)
        results = svc.drain()
        assert results[inter].started_beat < results[batch].started_beat

    def test_tenant_fairness_round_robin(self):
        svc = MatcherService(uniform_pool(1, ChipSpec(8, 2), AB))
        a1 = svc.submit("AB", "ABAB", tenant="alice")
        a2 = svc.submit("AB", "ABAB", tenant="alice")
        a3 = svc.submit("AB", "ABAB", tenant="alice")
        b1 = svc.submit("AB", "ABAB", tenant="bob")
        results = {r.job_id: r for r in svc.drain()}
        order = sorted(results, key=lambda jid: results[jid].started_beat)
        assert order == [a1, b1, a2, a3]

    def test_backpressure_raises_when_degradation_off(self):
        config = SchedulerConfig(queue_capacity=1, degrade_when_saturated=False)
        svc = MatcherService(uniform_pool(1, ChipSpec(8, 2), AB), config=config)
        svc.submit("AB", "ABAB")
        with pytest.raises(BackpressureError):
            svc.submit("AB", "ABAB")

    def test_saturation_degrades_to_software(self):
        config = SchedulerConfig(queue_capacity=1, degrade_when_saturated=True)
        svc = MatcherService(uniform_pool(1, ChipSpec(8, 2), AB), config=config)
        svc.submit("AB", "ABAB")
        jid = svc.submit("AXB", "ABABAB")
        r = svc.drain()[jid]
        assert r.via_fallback and r.mode == "software"
        assert r.results == oracle("AXB", "ABABAB")
        assert svc.telemetry.backpressure_hits == 1
        assert svc.telemetry.fallbacks == 1

    def test_worker_death_retries_on_another_worker(self):
        faults = ScriptedInjector([Fault(FaultKind.WORKER_DEATH, at_fraction=0.5)])
        svc = MatcherService(uniform_pool(2, ChipSpec(8, 2), AB), faults=faults)
        jid = svc.submit("AXC", "ABCAACACCAB")
        r = svc.drain()[jid]
        assert r.results == oracle("AXC", "ABCAACACCAB")
        assert r.attempts == 1 and not r.via_fallback
        assert svc.telemetry.deaths == 1 and svc.telemetry.retries == 1
        assert svc.pool.n_live == 1

    def test_retry_exhaustion_falls_back_to_software(self):
        faults = ScriptedInjector(
            [Fault(FaultKind.WORKER_DEATH)] * 3
        )
        config = SchedulerConfig(max_retries=1)
        svc = MatcherService(
            uniform_pool(3, ChipSpec(8, 2), AB), config=config, faults=faults
        )
        jid = svc.submit("AXC", "ABCAACACCAB")
        r = svc.drain()[jid]
        assert r.via_fallback
        assert r.results == oracle("AXC", "ABCAACACCAB")
        assert svc.telemetry.deaths == 2  # two attempts died, then degrade

    def test_stuck_beats_add_latency_not_errors(self):
        # A fast host keeps the job device-bound so the stall is visible
        # beat for beat (on the 1979 host the bus would hide it).
        fast = HostSpec(name="mainframe", memory_cycle_ns=100.0, bytes_per_word=8)
        clean = MatcherService(uniform_pool(1, ChipSpec(8, 2), AB), host=fast)
        jid = clean.submit("AB", "ABAB" * 10)
        base = clean.drain()[jid].finished_beat
        faults = ScriptedInjector(
            [Fault(FaultKind.STUCK_BEATS, extra_beats=400)]
        )
        stuck = MatcherService(
            uniform_pool(1, ChipSpec(8, 2), AB), host=fast, faults=faults
        )
        jid = stuck.submit("AB", "ABAB" * 10)
        r = stuck.drain()[jid]
        assert r.finished_beat == base + 400
        assert r.results == oracle("AB", "ABAB" * 10)
        assert stuck.telemetry.stuck_events == 1

    def test_all_dead_pool_degrades_gracefully(self):
        dead = Wafer(1, 6)
        for c in range(6):
            dead.mark_defective(0, c)
        svc = MatcherService(pool_from_wafers([dead], AB))
        jid = svc.submit("AXB", "ABABAB")
        r = svc.drain()[jid]
        assert r.via_fallback and r.results == oracle("AXB", "ABABAB")

    def test_degraded_worker_still_correct(self):
        wafer = Wafer(2, 4)
        wafer.mark_defective(0, 1)
        wafer.mark_defective(1, 2)
        svc = MatcherService(pool_from_wafers([wafer], AB))
        pattern, text = "ABCABCA", "ABCABCABCABC"  # > 6 surviving cells
        jid = svc.submit(pattern, text)
        r = svc.drain()[jid]
        assert r.mode == "multipass"
        assert r.results == oracle(pattern, text)

    def test_telemetry_report_renders(self):
        svc = MatcherService(uniform_pool(2, ChipSpec(8, 2), AB))
        svc.submit("AB", "ABAB" * 8, tenant="alice")
        svc.submit("BA", "ABAB" * 8, tenant="bob",
                   priority=Priority.INTERACTIVE)
        svc.drain()
        report = svc.report()
        assert "matcher farm" in report
        assert "priority classes" in report
        assert "chip-0" in report
        assert svc.telemetry.completed == 2
        assert svc.telemetry.aggregate_chars_per_s(svc.beat_ns) > 0

    def test_cascade_pool_serves_long_patterns_directly(self):
        svc = MatcherService(cascade_pool(2, ChipSpec(4, 2), 3, AB))
        pattern = "ABCABCABCA"  # 10 chars > 4, fits 12-cell cascade
        text = "ABCABCABCABCABCABC"
        jid = svc.submit(pattern, text)
        r = svc.drain()[jid]
        assert r.mode == "direct"
        assert r.results == oracle(pattern, text)

    def test_drain_is_idempotent_snapshot(self):
        svc = MatcherService(uniform_pool(1, ChipSpec(8, 2), AB))
        svc.submit("AB", "ABAB")
        first = svc.drain()
        again = svc.drain()
        assert [r.job_id for r in first] == [r.job_id for r in again]
