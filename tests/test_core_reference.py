"""The oracles themselves: direct checks of the Section 3.1 definitions."""

import numpy as np
import pytest

from repro import Alphabet, count_oracle, match_oracle, parse_pattern
from repro.core.reference import correlation_oracle
from repro.errors import PatternError


class TestMatchOracle:
    def test_definition_by_hand(self, ab4):
        # r_i = AND over the window ending at i
        pcs = parse_pattern("AB", ab4)
        assert match_oracle(pcs, list("CABAB")) == [False, False, True, False, True]

    def test_wildcard_matches_anything(self, ab4):
        pcs = parse_pattern("X", ab4)
        assert match_oracle(pcs, list("ABCD")) == [True] * 4

    def test_positions_before_k_false(self, ab4):
        pcs = parse_pattern("AAAA", ab4)
        assert match_oracle(pcs, list("AAAAA")) == [False] * 3 + [True, True]

    def test_empty_pattern_rejected(self):
        with pytest.raises(PatternError):
            match_oracle([], list("AB"))


class TestCountOracle:
    def test_counts_matching_positions(self, ab4):
        pcs = parse_pattern("AXC", ab4)
        counts = count_oracle(pcs, list("ABCAACACC"))
        # window ending at 2 = ABC vs AXC: A yes, wild yes, C yes -> 3
        assert counts[2] == 3
        # window ending at 3 = BCA: B!=A no, wild yes, A!=C no -> 1
        assert counts[3] == 1

    def test_incomplete_windows_zero(self, ab4):
        pcs = parse_pattern("ABC", ab4)
        assert count_oracle(pcs, list("AB")) == [0, 0]

    def test_empty_pattern_rejected(self):
        with pytest.raises(PatternError):
            count_oracle([], list("AB"))


class TestCorrelationOracle:
    def test_matches_numpy_formulation(self):
        rng = np.random.default_rng(0)
        p = rng.normal(size=4)
        s = rng.normal(size=12)
        got = correlation_oracle(p, s)
        for i in range(3, 12):
            window = s[i - 3 : i + 1]
            assert got[i] == pytest.approx(float(np.sum((window - p) ** 2)))

    def test_perfect_match_scores_zero(self):
        p = [1.0, -2.0, 3.0]
        s = [0.0, 1.0, -2.0, 3.0, 0.0]
        got = correlation_oracle(p, s)
        assert got[3] == pytest.approx(0.0)

    def test_empty_pattern_rejected(self):
        with pytest.raises(PatternError):
            correlation_oracle([], [1.0])
