"""The Figure 1-1 host system and its three devices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Alphabet
from repro.chip.chip import ChipSpec
from repro.errors import HostError
from repro.host import HostBus, HostSpec, HostSystem
from repro.host.devices import FFTDevice, PatternMatcherDevice, SystolicSorterDevice

floats = st.floats(min_value=-100, max_value=100, allow_nan=False, width=32)


class TestHostModel:
    def test_1979_memory_cannot_feed_the_chip(self):
        """The headline claim: 250 ns/char exceeds the memory bandwidth of
        most conventional computers."""
        bus = HostBus(HostSpec())  # 600 ns cycle, 2-byte words
        assert bus.is_device_starved(250.0)

    def test_fast_mainframe_can_feed_it(self):
        fast = HostSpec(name="mainframe", memory_cycle_ns=100.0, bytes_per_word=8)
        assert not HostBus(fast).is_device_starved(250.0)

    def test_transfer_paced_by_slower_side(self):
        bus = HostBus(HostSpec(memory_cycle_ns=600.0, bytes_per_word=2))
        elapsed = bus.transfer(100, device_beat_ns=250.0)
        assert elapsed == pytest.approx(100 * 300.0)  # memory-bound
        elapsed = bus.transfer(100, device_beat_ns=400.0)
        assert elapsed == pytest.approx(100 * 400.0)  # device-bound

    def test_negative_transfer_rejected(self):
        with pytest.raises(HostError):
            HostBus(HostSpec()).transfer(-1, 250.0)

    def test_software_match_time_scales_with_pattern(self):
        h = HostSpec()
        assert h.software_match_time_ns(100, 8) == 2 * h.software_match_time_ns(100, 4)


class TestSorterDevice:
    @settings(max_examples=30, deadline=None)
    @given(keys=st.lists(floats, max_size=32))
    def test_sorts(self, keys):
        dev = SystolicSorterDevice(n_cells=32)
        assert dev.process(keys) == sorted(float(k) for k in keys)

    def test_capacity_enforced(self):
        dev = SystolicSorterDevice(n_cells=4)
        with pytest.raises(HostError):
            dev.process([1.0] * 5)

    def test_linear_beat_cost(self):
        dev = SystolicSorterDevice(n_cells=64)
        assert dev.beats_for(50) == 100  # N in + N out

    def test_duplicates_and_reverse_order(self):
        dev = SystolicSorterDevice(n_cells=8)
        assert dev.process([3, 3, 2, 1, 1]) == [1.0, 1.0, 2.0, 3.0, 3.0]


class TestFFTDevice:
    @settings(max_examples=20, deadline=None)
    @given(signal=st.lists(floats, min_size=16, max_size=16))
    def test_matches_numpy(self, signal):
        dev = FFTDevice(block_size=16)
        got = np.array(dev.process(signal))
        assert np.allclose(got, np.fft.fft(signal), atol=1e-6)

    def test_blocks_and_padding(self):
        dev = FFTDevice(block_size=8)
        out = dev.process([1.0] * 12)  # 1.5 blocks -> zero-padded
        assert len(out) == 16
        want = np.concatenate([np.fft.fft([1.0] * 8),
                               np.fft.fft([1.0] * 4 + [0.0] * 4)])
        assert np.allclose(np.array(out), want, atol=1e-6)

    def test_power_of_two_enforced(self):
        with pytest.raises(HostError):
            FFTDevice(block_size=12)

    def test_beat_accounting_includes_pipeline_latency(self):
        dev = FFTDevice(block_size=64)
        assert dev.beats_for(64) == 64 + 6
        assert dev.beats_for(0) == 0

    def test_empty_stream(self):
        assert FFTDevice(block_size=8).process([]) == []


class TestHostSystem:
    def build(self):
        system = HostSystem(HostSpec())
        system.attach(SystolicSorterDevice(n_cells=16))
        system.attach(FFTDevice(block_size=8))
        matcher = PatternMatcherDevice(ChipSpec(4, 2), Alphabet("ABCD"))
        matcher.load_pattern("AB")
        system.attach(matcher)
        return system

    def test_figure_1_1_three_devices(self):
        system = self.build()
        assert set(system.devices) == {"sorter", "fft", "pattern-matcher"}

    def test_jobs_accounted(self):
        system = self.build()
        system.run("sorter", [3.0, 1.0, 2.0])
        system.run("pattern-matcher", "ABAB")
        assert len(system.jobs) == 2
        assert system.total_device_time_ns() > 0

    def test_unknown_device_rejected(self):
        with pytest.raises(HostError):
            self.build().run("ghost", [])

    def test_duplicate_attachment_rejected(self):
        system = self.build()
        with pytest.raises(HostError):
            system.attach(SystolicSorterDevice())

    def test_detach(self):
        system = self.build()
        system.detach("sorter")
        with pytest.raises(HostError):
            system.run("sorter", [])
        with pytest.raises(HostError):
            system.detach("sorter")

    def test_matcher_device_requires_pattern(self):
        dev = PatternMatcherDevice(ChipSpec(4, 2), Alphabet("ABCD"))
        with pytest.raises(HostError):
            dev.process("AB")


class TestHostSystemEdgeCases:
    def build(self):
        system = HostSystem(HostSpec())
        system.attach(SystolicSorterDevice(n_cells=16))
        system.attach(FFTDevice(block_size=8))
        return system

    def test_detach_missing_device(self):
        system = self.build()
        with pytest.raises(HostError):
            system.detach("nonexistent")

    def test_empty_pool_run_raises_host_error(self):
        system = HostSystem()
        with pytest.raises(HostError, match="no devices attached"):
            system.run("sorter", [1.0])

    def test_reattach_after_detach(self):
        system = self.build()
        system.detach("sorter")
        assert "sorter" not in system.devices
        system.attach(SystolicSorterDevice(n_cells=4))
        assert system.run("sorter", [2.0, 1.0]) == [1.0, 2.0]

    def test_empty_stream_job(self):
        system = self.build()
        assert system.run("sorter", []) == []
        assert system.run("fft", []) == []
        # Empty jobs are still accounted, at zero cost.
        assert len(system.jobs) == 2
        assert system.total_device_time_ns() == 0.0

    def test_total_device_time_across_mixed_devices(self):
        system = self.build()
        matcher = PatternMatcherDevice(ChipSpec(4, 2), Alphabet("ABCD"))
        matcher.load_pattern("AB")
        system.attach(matcher)
        system.run("sorter", [3.0, 1.0, 2.0])
        system.run("fft", [1.0] * 8)
        system.run("pattern-matcher", "ABAB")
        assert len(system.jobs) == 3
        # Each job contributes max(transfer, device) -- streaming overlap.
        expected = sum(max(j.transfer_ns, j.device_ns) for j in system.jobs)
        assert system.total_device_time_ns() == pytest.approx(expected)
        assert all(j.total_ns > 0 for j in system.jobs)
        by_device = {j.device for j in system.jobs}
        assert by_device == {"sorter", "fft", "pattern-matcher"}
