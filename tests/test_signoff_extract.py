"""Layout extraction: mask geometry back to transistors and nets."""

import pytest

from repro.circuit.netlist import GND, VDD
from repro.layout.cells import cell_bundle
from repro.layout.geometry import Point, Rect
from repro.layout.layers import Layer
from repro.signoff.extract import ConductorNets, extract, extract_cell


def _crossing(implant=False, contact=False):
    """A single poly/diffusion crossing with optional implant/contact."""
    rects = {
        Layer.POLY: [Rect(0, 4, 10, 6)],
        Layer.DIFFUSION: [Rect(4, 0, 6, 10)],
    }
    if implant:
        rects[Layer.IMPLANT] = [Rect(2, 2, 8, 8)]
    if contact:
        rects[Layer.CONTACT] = [Rect(4, 4, 6, 6)]
    return rects


PORTS = {
    "g": (Point(1, 5), Layer.POLY),
    "s": (Point(5, 1), Layer.DIFFUSION),
    "d": (Point(5, 9), Layer.DIFFUSION),
}


class TestSingleDevice:
    def test_enhancement_from_crossing(self):
        ex = extract(_crossing(), PORTS)
        assert ex.n_devices == 1 and ex.n_loads == 0
        (t,) = ex.circuit.transistors
        assert t.gate == "g"
        assert {t.a, t.b} == {"s", "d"}
        assert ex.warnings == []

    def test_channel_geometry_follows_current_direction(self):
        ex = extract(_crossing(), PORTS)
        geom = ex.device_geom[ex.circuit.transistors[0].label]
        # Fragments sit above and below: vertical current, L = height.
        assert (geom.length, geom.width) == (2, 2)
        assert geom.depletion is False

    def test_butting_contact_suppresses_transistor(self):
        ex = extract(_crossing(contact=True), PORTS)
        assert ex.n_devices == 0 and ex.n_loads == 0
        # The cut joins poly and diffusion into one net.
        assert ex.net_of_port["g"] == ex.net_of_port["s"]

    def test_implant_plus_vdd_terminal_is_depletion_load(self):
        ports = dict(PORTS)
        ports["VDD"] = ports.pop("d")
        ex = extract(_crossing(implant=True), ports)
        assert ex.n_loads == 1 and ex.circuit.transistors == []
        assert ex.circuit.loads[0].node == "s"
        geom = ex.device_geom[ex.circuit.loads[0].label]
        assert geom.depletion is True

    def test_rail_ports_map_to_rail_nets(self):
        ports = dict(PORTS)
        ports["GND"] = ports.pop("s")
        ex = extract(_crossing(), ports)
        assert ex.net_of_port["GND"] == GND
        (t,) = ex.circuit.transistors
        assert GND in (t.a, t.b)

    def test_port_off_any_shape_warns(self):
        ports = {"nowhere": (Point(50, 50), Layer.METAL)}
        ex = extract(_crossing(), ports)
        assert any("nowhere" in w for w in ex.warnings)
        assert "nowhere" not in ex.net_of_port


class TestConductorNets:
    def test_contact_joins_layers(self):
        rects = {
            Layer.POLY: [Rect(0, 0, 4, 2)],
            Layer.METAL: [Rect(0, 0, 3, 3)],
            Layer.CONTACT: [Rect(0, 0, 2, 2)],
        }
        nets = ConductorNets(rects)
        assert nets.net_at(Point(1, 1), Layer.POLY) == nets.net_at(
            Point(1, 1), Layer.METAL
        )

    def test_single_layer_contact_warns(self):
        rects = {
            Layer.METAL: [Rect(0, 0, 4, 4)],
            Layer.CONTACT: [Rect(1, 1, 3, 3)],
        }
        nets = ConductorNets(rects)
        assert len(nets.warnings) == 1

    def test_disjoint_shapes_are_distinct_nets(self):
        rects = {Layer.METAL: [Rect(0, 0, 4, 4), Rect(10, 0, 14, 4)]}
        nets = ConductorNets(rects)
        a = nets.net_at(Point(1, 1), Layer.METAL)
        b = nets.net_at(Point(11, 1), Layer.METAL)
        assert a is not None and b is not None and a != b

    def test_net_at_open_point_is_none(self):
        nets = ConductorNets({Layer.METAL: [Rect(0, 0, 4, 4)]})
        assert nets.net_at(Point(40, 40), Layer.METAL) is None


@pytest.mark.parametrize("kind", ["comparator", "accumulator"])
@pytest.mark.parametrize("positive", [True, False])
class TestCellExtraction:
    def test_census_matches_drawn_circuit(self, kind, positive):
        b = cell_bundle(kind, positive)
        ex = extract_cell(b.layout)
        assert ex.warnings == []
        assert ex.n_devices == b.circuit.n_transistors
        assert ex.n_loads == len(b.circuit.loads)

    def test_every_port_lands_on_a_net(self, kind, positive):
        b = cell_bundle(kind, positive)
        ex = extract_cell(b.layout)
        assert set(ex.net_of_port) == set(b.layout.ports)
        assert ex.net_of_port["VDD"] == VDD
        assert ex.net_of_port["GND"] == GND

    def test_geometry_classes_are_the_two_standard_sizes(self, kind, positive):
        b = cell_bundle(kind, positive)
        ex = extract_cell(b.layout)
        classes = {
            (g.depletion, g.length, g.width) for g in ex.device_geom.values()
        }
        # Pullups L=8 W=2 (Z=4); switches L=2 W=4 (Z=1/2): the 4:1 style.
        assert classes == {(True, 8, 2), (False, 2, 4)}

    def test_right_edge_ports_share_left_edge_nets(self, kind, positive):
        b = cell_bundle(kind, positive)
        ex = extract_cell(b.layout)
        for pname, net in ex.net_of_port.items():
            if pname.endswith("_r"):
                assert net == ex.net_of_port[pname[:-2]]
