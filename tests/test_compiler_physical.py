"""The compiler's physical back end: signoff, mutants, CLI.

Every generated design must clear the same gauntlet as the hand-built
prototype -- cell DRC/extraction/LVS, whole-netlist ERC and timing, and
the assembly audits -- and the six seeded signoff defects must still be
caught by their responsible stages when planted in *generated* cells.
"""

import json

import pytest

from repro.compiler import compile_workload
from repro.compiler.__main__ import main
from repro.compiler.verify import run_design_mutants
from repro.signoff.pipeline import Signoff

STAGE_ORDER = ["drc", "extraction", "lvs", "erc", "timing", "assembly"]

#: kernel, cells, char_bits, data_bits -- one point per kernel here
#: (the CLI smoke test at the bottom covers a second, larger size; the
#: full six-point matrix runs in the compiler-signoff CI job).
POINTS = [
    ("match", 8, 2, 2),
    ("count", 8, 2, 2),
    ("inner-product", 4, 2, 2),
]


@pytest.fixture(scope="module")
def signoff():
    return Signoff()


class TestGeneratedDesignsSignOff:
    @pytest.mark.parametrize("kernel,cells,char_bits,data_bits", POINTS)
    def test_full_signoff_passes(self, signoff, kernel, cells, char_bits,
                                 data_bits):
        chip = compile_workload(kernel, cells, char_bits=char_bits,
                                data_bits=data_bits)
        report = signoff.run_design(chip)
        assert report.ok, report.summary()
        assert [s.stage for s in report.stages] == STAGE_ORDER

    def test_larger_than_prototype_signs_off(self, signoff):
        chip = compile_workload("match", 16, char_bits=4)
        assert len(chip.design.cells) == 16 * 5
        report = signoff.run_design(chip)
        assert report.ok, report.summary()

    def test_generated_cif_is_nonempty_and_parsable(self):
        from repro.layout.cif import parse_cif

        chip = compile_workload("count", 8, char_bits=2)
        cif = chip.cif()
        flat = parse_cif(cif).flatten()
        assert any(rects for rects in flat.values())


class TestMutantsOnGeneratedCells:
    @pytest.mark.parametrize("kernel,cells,char_bits,data_bits", POINTS)
    def test_all_six_defects_caught_in_generated_cells(
        self, signoff, kernel, cells, char_bits, data_bits
    ):
        chip = compile_workload(kernel, cells, char_bits=char_bits,
                                data_bits=data_bits)
        results = run_design_mutants(chip, signoff)
        assert len(results) == 6
        for r in results:
            assert r.caught, f"{r.name}: {r.detail}"
            assert r.upstream_clean, f"{r.name}: {r.detail}"


class TestCompilerCli:
    def test_single_point_signoff_writes_report(self, tmp_path):
        out = tmp_path / "report.json"
        rc = main([
            "--kernel", "count", "--cells", "8",
            "--signoff", "--json", str(out), "--quiet",
        ])
        assert rc == 0
        data = json.loads(out.read_text())
        assert data["name"] == "count_8x2"
        assert data["ok"] is True
        assert [s["stage"] for s in data["stages"]] == STAGE_ORDER

    def test_cif_export(self, tmp_path):
        out = tmp_path / "chip.cif"
        rc = main([
            "--kernel", "inner-product", "--cells", "4",
            "--cif", str(out), "--quiet",
        ])
        assert rc == 0
        assert out.read_text().strip()

    def test_matrix_compiles(self, capsys):
        rc = main([])
        assert rc == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 6
        assert any(line.startswith("match_16x4") for line in lines)
