"""The comparator and accumulator cell circuits vs their algorithms."""

import random

import pytest

from repro.circuit.cells.accumulator import ACCUMULATOR_DEVICES, build_accumulator
from repro.circuit.cells.comparator import COMPARATOR_DEVICES, build_comparator
from repro.circuit.netlist import Circuit
from repro.circuit.signals import HIGH, LOW, UNKNOWN
from repro.core.cells import AccumulatorCell
from repro.errors import CircuitError


def clock_comparator(c, ports, p, s, d):
    c.set_input(ports["p_in"], p)
    c.set_input(ports["s_in"], s)
    c.set_input(ports["d_in"], d)
    c.set_input("clk", HIGH)
    c.settle()
    c.set_input("clk", LOW)
    c.settle()
    return (
        c.read_bool(ports["p_out"]),
        c.read_bool(ports["s_out"]),
        c.read_bool(ports["d_out"]),
    )


class TestComparatorCircuit:
    """Figure 3-6, exhaustively, both twins."""

    @pytest.mark.parametrize("positive", [True, False], ids=["pos", "neg"])
    def test_truth_table(self, positive):
        c = Circuit()
        ports = build_comparator(c, "u.", "clk", positive=positive)
        for p in (0, 1):
            for s in (0, 1):
                for d in (0, 1):
                    ins = (p, s, d) if positive else (1 - p, 1 - s, 1 - d)
                    po, so, do = clock_comparator(c, ports, *ins)
                    d_alg = bool(d) and (p == s)
                    if positive:
                        assert (po, so, do) == (not p, not s, not d_alg)
                    else:
                        assert (po, so, do) == (bool(p), bool(s), d_alg)

    def test_outputs_hold_while_clock_low(self):
        c = Circuit()
        ports = build_comparator(c, "u.", "clk", positive=True)
        clock_comparator(c, ports, 1, 1, 1)
        # inputs change while the clock is low: outputs must not
        c.set_input(ports["p_in"], LOW)
        c.set_input(ports["s_in"], HIGH)
        c.settle()
        assert c.read(ports["d_out"]) is LOW  # still NAND(1, eq(1,1)) = 0

    def test_four_gate_budget(self):
        """'The pattern matcher cells ... contain only four gates each.'"""
        for positive in (True, False):
            c = Circuit()
            build_comparator(c, "u.", "clk", positive=positive)
            assert c.n_transistors == COMPARATOR_DEVICES == 15

    def test_prefix_validated(self):
        with pytest.raises(CircuitError):
            build_comparator(Circuit(), "noperiod", "clk")


def clock_accumulator(c, ports, d, x, lam, r, positive):
    di, xi, li, ri = (d, x, lam, r) if positive else (1 - d, 1 - x, 1 - lam, 1 - r)
    c.set_input(ports["d_in"], di)
    c.set_input(ports["x_in"], xi)
    c.set_input(ports["lam_in"], li)
    c.set_input(ports["r_in"], ri)
    c.set_input("clkB", LOW)
    c.set_input("clkA", HIGH)
    c.settle()
    c.set_input("clkA", LOW)
    c.settle()
    out = c.read(ports["r_out"])
    c.set_input("clkB", HIGH)
    c.settle()
    c.set_input("clkB", LOW)
    c.settle()
    return out


class TestAccumulatorCircuit:
    @pytest.mark.parametrize("positive", [True, False], ids=["pos", "neg"])
    def test_sequential_behaviour_matches_algorithm(self, positive):
        c = Circuit()
        ports = build_accumulator(c, "a.", "clkA", "clkB", positive=positive)
        beh = AccumulatorCell()
        random.seed(17)
        synced = False
        checked = 0
        for step in range(60):
            lam = 1 if step == 0 else int(random.random() < 0.3)
            d, x, r = (random.randint(0, 1) for _ in range(3))
            out = clock_accumulator(c, ports, d, x, lam, r, positive)
            emitted = beh.absorb(bool(d), bool(x), bool(lam))
            want = emitted.value if emitted is not None else bool(r)
            if lam:
                synced = True
                continue  # the sync emission itself may be garbage
            if synced and out is not UNKNOWN:
                got = out is HIGH
                if positive:
                    got = not got  # positive twin emits inverted r
                assert got == want, (step, d, x, lam, r)
                checked += 1
        assert checked > 20

    @pytest.mark.parametrize("positive", [True, False], ids=["pos", "neg"])
    def test_lambda_emission_matches_algorithm(self, positive):
        """Run fixed sequences whose lambda-beat output is fully known."""
        c = Circuit()
        ports = build_accumulator(c, "a.", "clkA", "clkB", positive=positive)
        # sync: lambda with d=1,x=0 -> afterwards t=TRUE
        clock_accumulator(c, ports, 1, 0, 1, 0, positive)
        # window [match, mismatch, lambda-match] -> emission False
        clock_accumulator(c, ports, 1, 0, 0, 0, positive)
        clock_accumulator(c, ports, 0, 0, 0, 0, positive)
        out = clock_accumulator(c, ports, 1, 0, 1, 0, positive)
        got = (out is HIGH) if not positive else (out is LOW)
        assert got is False
        # next window all-match with a wildcard mismatch -> emission True
        clock_accumulator(c, ports, 1, 0, 0, 0, positive)
        clock_accumulator(c, ports, 0, 1, 0, 0, positive)  # x covers d=0
        out = clock_accumulator(c, ports, 1, 0, 1, 0, positive)
        got = (out is HIGH) if not positive else (out is LOW)
        assert got is True

    def test_device_budget_recorded(self):
        c = Circuit()
        build_accumulator(c, "a.", "clkA", "clkB", positive=True)
        assert c.n_transistors >= 25  # bigger than the comparator
