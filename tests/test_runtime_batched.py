"""The async runtime's batch tier: coalesced dispatch over real workers.

`AsyncMatcherService.submit_many` now ships one ``JobRequest`` carrying
many streams per batch, dedups repeated streams into followers, and
serves warm repeats from the shared cross-tenant :class:`ResultCache`.
Correctness bar is unchanged from the per-job path: oracle-identical
results through seeded worker deaths, whole-batch retries, per-member
deadline sheds, and admission control.
"""

import asyncio
import random

import pytest

from repro.alphabet import Alphabet
from repro.errors import BackpressureError, ServiceError
from repro.runtime import AsyncMatcherService, RuntimeConfig, WorkerPool
from repro.service.cache import ResultCache
from repro.service.reliability import FaultInjector
from repro.workloads import run_workload

AB = Alphabet("ABCD")


def run(coro):
    return asyncio.run(coro)


def oracle(pattern, text):
    return run_workload("match", pattern, text, AB, engine="oracle")


@pytest.fixture(scope="module")
def shared_pool():
    pool = WorkerPool(2, AB).start()
    yield pool
    pool.shutdown()


class TestCoalescing:
    def test_batched_dedup_and_order(self, shared_pool):
        texts = ["ABCA", "ABCA", "AACC", "CABC", "AACC"]

        async def go():
            svc = AsyncMatcherService(pool=shared_pool)
            await svc.start()
            jids = await svc.submit_many("AXC", texts)
            assert jids == sorted(jids)
            results = {r.job_id: r for r in await svc.drain()}
            return jids, results, svc.batches, svc.batched_jobs, svc.deduped

        jids, results, batches, batched_jobs, deduped = run(go())
        for jid, text in zip(jids, texts):
            assert results[jid].results == oracle("AXC", text)
        modes = [results[j].mode for j in jids]
        assert modes.count("deduped") == 2
        assert deduped == 2
        assert batches == 1 and batched_jobs == 3  # unique texts only

    def test_chunking_respects_max_batch_jobs(self, shared_pool):
        texts = ["ABCA", "AACC", "CABC", "BBCA", "ACCA"]

        async def go():
            cfg = RuntimeConfig(max_batch_jobs=2)
            svc = AsyncMatcherService(pool=shared_pool, config=cfg)
            await svc.start()
            jids = await svc.submit_many("AX", texts)
            results = {r.job_id: r for r in await svc.drain()}
            return jids, results, svc.batches

        jids, results, batches = run(go())
        # 2 + 2 + 1: the trailing singleton dispatches per-job, not batched.
        assert batches == 2
        for jid, text in zip(jids, texts):
            assert results[jid].results == oracle("AX", text)

    def test_singleton_chunk_dispatches_per_job(self, shared_pool):
        async def go():
            svc = AsyncMatcherService(pool=shared_pool)
            await svc.start()
            jids = await svc.submit_many("AX", ["ABCAABCA"])
            results = {r.job_id: r for r in await svc.drain()}
            return jids, results, svc.batches

        jids, results, batches = run(go())
        assert batches == 0
        assert results[jids[0]].results == oracle("AX", "ABCAABCA")

    def test_empty_members_and_empty_batch(self, shared_pool):
        async def go():
            svc = AsyncMatcherService(pool=shared_pool)
            await svc.start()
            assert await svc.submit_many("AX", []) == []
            jids = await svc.submit_many("AX", ["", "ABCA", ""])
            results = {r.job_id: r for r in await svc.drain()}
            return jids, results

        jids, results = run(go())
        assert results[jids[0]].results == []
        assert results[jids[2]].results == []
        assert results[jids[1]].results == oracle("AX", "ABCA")

    def test_max_batch_jobs_validated(self):
        with pytest.raises(ServiceError):
            RuntimeConfig(max_batch_jobs=0)


class TestCacheIntegration:
    def test_warm_pass_is_served_from_cache(self, shared_pool):
        texts = ["ABCAACAC", "CACCABAB"]

        async def go():
            cache = ResultCache()
            svc = AsyncMatcherService(pool=shared_pool, cache=cache)
            await svc.start()
            cold_ids = await svc.submit_many("AXC", texts, tenant="cold")
            cold = {r.job_id: r for r in await svc.drain()}
            warm_ids = await svc.submit_many("AXC", texts, tenant="warm")
            warm = {r.job_id: r for r in await svc.drain()}
            return cold_ids, cold, warm_ids, warm, cache.stats()

        cold_ids, cold, warm_ids, warm, stats = run(go())
        for cid, wid, text in zip(cold_ids, warm_ids, texts):
            assert cold[cid].results == warm[wid].results == oracle(
                "AXC", text
            )
            assert warm[wid].mode == "cached"
        assert stats["hits"] == len(texts)
        assert stats["by_tenant"]["warm"]["hits"] == len(texts)

    def test_per_job_submit_also_hits_cache(self, shared_pool):
        async def go():
            svc = AsyncMatcherService(pool=shared_pool, cache=ResultCache())
            await svc.start()
            a = await svc.submit("AX", "ABCAABCA")
            first = await svc.result(a)
            b = await svc.submit("AX", "ABCAABCA")
            second = await svc.result(b)
            return first, second

        first, second = run(go())
        assert first.results == second.results == oracle("AX", "ABCAABCA")
        assert second.mode == "cached"


class TestAdversity:
    def test_differential_under_seeded_faults(self):
        rng = random.Random(404)

        async def go(seed, texts):
            faults = FaultInjector(seed=seed, p_death=0.3)
            cfg = RuntimeConfig(max_batch_jobs=4)
            async with AsyncMatcherService(
                2, AB, config=cfg, faults=faults
            ) as svc:
                jids = await svc.submit_many("AXC", texts)
                results = {r.job_id: r for r in await svc.drain()}
                return jids, results

        for trial in range(3):
            texts = [
                "".join(rng.choice("ABCD") for _ in range(rng.randint(0, 40)))
                for _ in range(rng.randint(2, 10))
            ]
            texts[1] = texts[0]  # force a follower through the fault path
            jids, results = run(go(trial, texts))
            for jid, text in zip(jids, texts):
                assert results[jid].results == oracle("AXC", text), (
                    trial, text
                )

    def test_member_deadline_sheds_without_killing_batch(self):
        async def go():
            cfg = RuntimeConfig(default_timeout_s=0.0001)
            async with AsyncMatcherService(2, AB, config=cfg) as svc:
                texts = ["ABCA" * 20, "AACC" * 20]
                jids = await svc.submit_many("AX", texts)
                results = {r.job_id: r for r in await svc.drain()}
                return jids, texts, results

        jids, texts, results = run(go())
        for jid, text in zip(jids, texts):
            r = results[jid]
            assert r.results == oracle("AX", text)  # fallback still correct
            assert r.timed_out and r.via_fallback

    def test_numeric_workload_batched(self):
        taps = [1.0, 2.0, 1.0]
        streams = [[float(i + j) for i in range(20)] for j in range(5)]

        async def go():
            async with AsyncMatcherService(2, AB) as svc:
                jids = await svc.submit_many(taps, streams, workload="fir")
                results = {r.job_id: r for r in await svc.drain()}
                return jids, results

        jids, results = run(go())
        for jid, s in zip(jids, streams):
            want = run_workload("fir", taps, s, AB, engine="oracle")
            assert results[jid].results == want
            assert results[jid].mode == "batched"

    def test_saturation_raises_after_flushing_admitted_head(self):
        async def go():
            cfg = RuntimeConfig(
                max_pending=1, degrade_when_saturated=False,
                max_batch_jobs=1,
            )
            async with AsyncMatcherService(1, AB, config=cfg) as svc:
                with pytest.raises(BackpressureError):
                    await svc.submit_many(
                        "AX", ["ABCA" * 10, "AACC" * 10, "CABC" * 10]
                    )
                results = await svc.drain()
                return results

        results = run(go())
        # Whatever was admitted before the rejection still completed.
        for r in results:
            assert r.results == oracle("AX", "ABCA" * 10)
