"""Trace rendering, recorder bounds, and the exception hierarchy."""

import pytest

from repro import Alphabet, parse_pattern
from repro import errors
from repro.core.array import SystolicMatcherArray
from repro.streams import RecirculatingPattern
from repro.systolic.tracing import TraceRecorder, render_flow


class TestTraceRecorder:
    def run_traced(self, ab, max_beats=None):
        rec = TraceRecorder(max_beats=max_beats)
        arr = SystolicMatcherArray(3, recorder=rec)
        items = RecirculatingPattern(parse_pattern("ABC", ab)).items
        arr.run(items, "ABCABC")
        return rec

    def test_records_every_beat(self, ab4):
        rec = self.run_traced(ab4)
        beats = [bt.beat for bt in rec.beats]
        assert beats == list(range(beats[0], beats[0] + len(beats)))

    def test_max_beats_bounds_memory(self, ab4):
        rec = self.run_traced(ab4, max_beats=5)
        assert len(rec.beats) == 5

    def test_channel_history_shape(self, ab4):
        rec = self.run_traced(ab4)
        history = rec.channel_history("p")
        assert all(len(row) == 3 for row in history)

    def test_render_flow_marks_active_cells(self, ab4):
        rec = self.run_traced(ab4)
        text = render_flow(rec, ["p", "s"])
        assert "beat" in text and "*" in text and "." in text


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.AlphabetError, errors.PatternError, errors.StreamError,
            errors.SimulationError, errors.CircuitError, errors.ClockError,
            errors.ChargeDecayError, errors.LayoutError, errors.CIFError,
            errors.ChipError, errors.HostError, errors.MethodologyError,
            errors.DesignRuleViolation,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        if exc is errors.DesignRuleViolation:
            instance = exc("rule", "detail")
        else:
            instance = exc("boom")
        assert isinstance(instance, errors.ReproError)

    def test_clock_and_decay_are_circuit_errors(self):
        assert issubclass(errors.ClockError, errors.CircuitError)
        assert issubclass(errors.ChargeDecayError, errors.CircuitError)

    def test_design_rule_violation_carries_rule(self):
        v = errors.DesignRuleViolation("metal-width", "too thin at (0,0)")
        assert v.rule == "metal-width"
        assert "metal-width" in str(v)

    def test_one_except_catches_everything(self, ab4):
        from repro import PatternMatcher

        try:
            PatternMatcher("", ab4)
        except errors.ReproError:
            pass  # a single handler suffices for library failures
        else:
            pytest.fail("expected a ReproError")
