"""Stick diagrams: electrical interpretation, generated cells, DRC."""

import pytest

from repro.circuit.netlist import Circuit
from repro.circuit.cells.accumulator import build_accumulator
from repro.circuit.cells.comparator import build_comparator
from repro.errors import LayoutError
from repro.layout.cells import (
    accumulator_layout,
    check_cell,
    comparator_layout,
    expand_sticks,
    generate_cell_sticks,
)
from repro.layout.design_rules import DesignRuleChecker
from repro.layout.geometry import Rect
from repro.layout.layers import Layer
from repro.layout.sticks import StickDiagram


class TestStickDiagramPrimitives:
    def test_transistor_at_poly_diffusion_crossing(self):
        sd = StickDiagram("t", 10, 10)
        sd.stick(Layer.DIFFUSION, 5, 0, 5, 10)
        sd.stick(Layer.POLY, 0, 5, 10, 5)
        sites = sd.transistor_sites()
        assert len(sites) == 1
        assert sites[0][0].x == 5 and sites[0][0].y == 5
        assert sites[0][1] is False  # enhancement

    def test_implant_marks_depletion(self):
        sd = StickDiagram("t", 10, 10)
        sd.stick(Layer.DIFFUSION, 5, 0, 5, 10)
        sd.stick(Layer.POLY, 0, 5, 10, 5)
        sd.implant(5, 5)
        assert sd.transistor_sites()[0][1] is True

    def test_butting_contact_is_not_a_transistor(self):
        sd = StickDiagram("t", 10, 10)
        sd.stick(Layer.DIFFUSION, 5, 0, 5, 10)
        sd.stick(Layer.POLY, 0, 5, 10, 5)
        sd.contact(5, 5, Layer.POLY, Layer.DIFFUSION)
        assert sd.transistor_sites() == []

    def test_connectivity_through_contact_only(self):
        sd = StickDiagram("t", 10, 10)
        sd.stick(Layer.METAL, 0, 2, 10, 2)
        sd.stick(Layer.POLY, 0, 2, 10, 2)  # crossing along, no contact
        sd.port("m", 0, 2, Layer.METAL)
        sd.port("p", 10, 2, Layer.POLY)
        groups = sd.connectivity()
        assert {"m"} in groups and {"p"} in groups
        sd.contact(4, 2, Layer.METAL, Layer.POLY)
        groups = sd.connectivity()
        assert {"m", "p"} in groups

    def test_diffusion_net_split_by_channel(self):
        """Poly over diffusion makes a transistor, not a connection: the
        diffusion on either side of the gate is electrically distinct."""
        sd = StickDiagram("t", 10, 10)
        sd.stick(Layer.DIFFUSION, 5, 0, 5, 10)
        sd.stick(Layer.POLY, 0, 5, 10, 5)
        sd.port("src", 5, 0, Layer.DIFFUSION)
        sd.port("drn", 5, 10, Layer.DIFFUSION)
        groups = sd.connectivity()
        assert {"src"} in groups and {"drn"} in groups

    def test_diagonal_sticks_rejected(self):
        sd = StickDiagram("t", 10, 10)
        with pytest.raises(LayoutError):
            sd.stick(Layer.METAL, 0, 0, 5, 5)

    def test_ports_must_lie_on_boundary(self):
        sd = StickDiagram("t", 10, 10)
        with pytest.raises(LayoutError):
            sd.port("x", 5, 5, Layer.METAL)

    def test_out_of_bounds_rejected(self):
        sd = StickDiagram("t", 10, 10)
        with pytest.raises(LayoutError):
            sd.stick(Layer.METAL, 0, 0, 20, 0)

    def test_render_contains_legend_and_symbols(self):
        sd = StickDiagram("demo", 6, 6)
        sd.stick(Layer.METAL, 0, 3, 6, 3)
        text = sd.render()
        assert "demo" in text and "B" in text


class TestGeneratedCells:
    @pytest.mark.parametrize("positive", [True, False], ids=["pos", "neg"])
    def test_comparator_device_count_matches_netlist(self, positive):
        sd, _ = comparator_layout(positive)
        assert len(sd.transistor_sites()) == 15

    @pytest.mark.parametrize("positive", [True, False], ids=["pos", "neg"])
    def test_comparator_drc_clean(self, positive):
        _, layout = comparator_layout(positive)
        assert check_cell(layout) == []

    @pytest.mark.parametrize("positive", [True, False], ids=["pos", "neg"])
    def test_accumulator_drc_clean(self, positive):
        _, layout = accumulator_layout(positive)
        assert check_cell(layout) == []

    def test_comparator_ports_span_cell_for_abutment(self):
        sd, _ = comparator_layout(True)
        groups = sd.connectivity()

        def group_of(name):
            for g in groups:
                if name in g:
                    return g
            raise AssertionError(name)

        # each signal's left and right boundary ports are the same net
        for port in ("p_in", "s_in", "d_in", "clk"):
            assert port + "_r" in group_of(port)

    def test_stick_connectivity_reflects_netlist_nets(self):
        """Nodes shorted in the netlist map to one stick-diagram net."""
        c = Circuit("cmp")
        ports = build_comparator(c, "u.", "clk", positive=True)
        sd = generate_cell_sticks(
            c, {"a": ports["p_in"], "b": ports["p_in"]}, "twice"
        )
        groups = sd.connectivity()
        assert any({"a", "b"} <= g for g in groups)

    def test_depletion_loads_marked(self):
        sd, _ = comparator_layout(True)
        depletion = [s for s in sd.transistor_sites() if s[1]]
        assert len(depletion) == 4  # 2 inverters + xnor + nand pullups

    def test_expand_preserves_ports(self):
        sd, layout = comparator_layout(True)
        assert set(layout.ports) == set(sd.ports)
        assert layout.area == layout.width * layout.height

    def test_empty_circuit_rejected(self):
        with pytest.raises(LayoutError):
            generate_cell_sticks(Circuit("empty"), {}, "e")


class TestDesignRuleChecker:
    def test_detects_narrow_metal(self):
        checker = DesignRuleChecker()
        violations = checker.check({Layer.METAL: [Rect(0, 0, 2, 10)]})
        assert any(v.rule == "metal-width" for v in violations)

    def test_detects_close_spacing(self):
        checker = DesignRuleChecker()
        violations = checker.check(
            {Layer.METAL: [Rect(0, 0, 3, 10), Rect(4, 0, 7, 10)]}
        )
        assert any(v.rule == "metal-spacing" for v in violations)

    def test_touching_rects_are_one_conductor(self):
        checker = DesignRuleChecker()
        assert checker.check(
            {Layer.METAL: [Rect(0, 0, 3, 10), Rect(3, 0, 6, 10)]}
        ) == []

    def test_contact_must_be_covered(self):
        checker = DesignRuleChecker()
        violations = checker.check({Layer.CONTACT: [Rect(0, 0, 2, 2)]})
        assert any(v.rule == "contact-coverage" for v in violations)

    def test_contact_size_enforced(self):
        checker = DesignRuleChecker()
        violations = checker.check({Layer.CONTACT: [Rect(0, 0, 3, 2)]})
        assert any(v.rule == "contact-size" for v in violations)

    def test_enforce_raises(self):
        from repro.errors import DesignRuleViolation

        checker = DesignRuleChecker()
        with pytest.raises(DesignRuleViolation):
            checker.enforce({Layer.METAL: [Rect(0, 0, 1, 1)]})
