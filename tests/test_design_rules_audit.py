"""Targeted tests for the rules added in the Mead & Conway audit.

The original checker covered widths, same-layer spacing, and contact
size/coverage; the audit added poly-to-diffusion spacing, contact
spacing, implant overlap of depletion gates, and poly gate extension.
"""

from repro.layout.design_rules import (
    LAMBDA_RULES,
    DesignRuleChecker,
    gate_channels,
)
from repro.layout.geometry import Rect
from repro.layout.layers import Layer


def _rules_hit(rects_by_layer, rule):
    checker = DesignRuleChecker()
    return [v for v in checker.check(rects_by_layer) if v.rule == rule]


class TestPolyDiffSpacing:
    def test_touching_unrelated_shapes_violate(self):
        rects = {
            Layer.POLY: [Rect(0, 0, 4, 2)],
            Layer.DIFFUSION: [Rect(0, 2, 4, 4)],
        }
        assert len(_rules_hit(rects, "poly-diff-spacing")) == 1

    def test_one_lambda_gap_is_legal(self):
        rects = {
            Layer.POLY: [Rect(0, 0, 4, 2)],
            Layer.DIFFUSION: [Rect(0, 3, 4, 5)],
        }
        assert _rules_hit(rects, "poly-diff-spacing") == []

    def test_transistor_crossing_is_exempt(self):
        rects = {
            Layer.POLY: [Rect(0, 4, 10, 6)],
            Layer.DIFFUSION: [Rect(4, 0, 6, 10)],
        }
        assert _rules_hit(rects, "poly-diff-spacing") == []


class TestContactSpacing:
    def test_one_lambda_apart_violates(self):
        rects = {Layer.CONTACT: [Rect(0, 0, 2, 2), Rect(3, 0, 5, 2)]}
        assert len(_rules_hit(rects, "contact-spacing")) == 1

    def test_two_lambda_apart_is_legal(self):
        rects = {Layer.CONTACT: [Rect(0, 0, 2, 2), Rect(4, 0, 6, 2)]}
        assert _rules_hit(rects, "contact-spacing") == []


class TestImplantGateOverlap:
    def _gate(self, implant):
        return {
            Layer.POLY: [Rect(0, 4, 10, 6)],
            Layer.DIFFUSION: [Rect(4, 0, 6, 10)],
            Layer.IMPLANT: [implant],
        }

    def test_skimpy_implant_violates(self):
        rects = self._gate(Rect(3, 3, 7, 7))  # covers channel, 1-lambda lip
        assert len(_rules_hit(rects, "implant-gate-overlap")) == 1

    def test_full_blanket_is_legal(self):
        rects = self._gate(Rect(2, 2, 8, 8))  # channel plus 2 on every side
        assert _rules_hit(rects, "implant-gate-overlap") == []

    def test_enhancement_gate_needs_no_implant(self):
        rects = {
            Layer.POLY: [Rect(0, 4, 10, 6)],
            Layer.DIFFUSION: [Rect(4, 0, 6, 10)],
        }
        assert _rules_hit(rects, "implant-gate-overlap") == []


class TestGateExtension:
    def test_flush_poly_violates(self):
        rects = {
            Layer.POLY: [Rect(3, 4, 7, 6)],  # only 1 past the channel
            Layer.DIFFUSION: [Rect(4, 0, 6, 10)],
        }
        assert len(_rules_hit(rects, "gate-extension")) == 1

    def test_two_lambda_overhang_is_legal(self):
        rects = {
            Layer.POLY: [Rect(2, 4, 8, 6)],
            Layer.DIFFUSION: [Rect(4, 0, 6, 10)],
        }
        assert _rules_hit(rects, "gate-extension") == []


class TestGateChannels:
    def test_butting_contact_suppresses_channel(self):
        poly = [Rect(0, 4, 10, 6)]
        diff = [Rect(4, 0, 6, 10)]
        assert len(gate_channels(poly, diff)) == 1
        assert gate_channels(poly, diff, [Rect(4, 4, 6, 6)]) == []

    def test_merged_overlaps_are_one_device(self):
        # Two overlapping poly shapes crossing one diffusion: one channel.
        poly = [Rect(0, 4, 6, 6), Rect(4, 4, 10, 6)]
        diff = [Rect(4, 0, 6, 10)]
        assert len(gate_channels(poly, diff)) == 1


class TestRuleTable:
    def test_audit_rules_present_with_conservative_values(self):
        assert LAMBDA_RULES["poly-diff-spacing"] == 1
        assert LAMBDA_RULES["contact-spacing"] == 2
        assert LAMBDA_RULES["implant-gate-overlap"] == 2
        assert LAMBDA_RULES["gate-extension"] == 2

    def test_generated_cells_stay_clean(self):
        from repro.layout.cells import cell_bundle

        checker = DesignRuleChecker()
        for kind in ("comparator", "accumulator"):
            for pos in (True, False):
                layout = cell_bundle(kind, pos).layout
                assert checker.check(layout.rects) == []
