"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro import Alphabet
from repro.service.reliability import FaultInjector

#: One frozen seed for the fleet-health tests: the fault injector's
#: defect stream, the LFSR stimulus, and the wafer lot all derive from
#: fixed seeds, so the spawn-context health tests replay identically
#: run to run (CI runs the health suite twice to enforce exactly that).
HEALTH_SEED = 0xB157


@pytest.fixture
def health_injector() -> FaultInjector:
    """A fault injector that grows a latent defect on every sample,
    deterministically -- the health loop's worst-day input."""
    return FaultInjector(seed=HEALTH_SEED, p_defect=1.0)


@pytest.fixture
def ab4() -> Alphabet:
    """The prototype's alphabet: four symbols, two-bit characters."""
    return Alphabet("ABCD")


@pytest.fixture
def ab2() -> Alphabet:
    """Minimal alphabet with one-bit characters."""
    return Alphabet("AB", bits=1)


def patterns(symbols: str = "ABCD", max_len: int = 6, wildcards: bool = True):
    """Strategy for pattern strings (X = wildcard when enabled)."""
    alphabet = symbols + ("X" if wildcards else "")
    return st.text(alphabet=alphabet, min_size=1, max_size=max_len)


def texts(symbols: str = "ABCD", max_len: int = 30):
    """Strategy for text strings."""
    return st.text(alphabet=symbols, min_size=0, max_size=max_len)


#: Immutable module-level alphabets for hypothesis @given tests (fixtures
#: are function-scoped, which hypothesis rejects inside @given).
AB4 = Alphabet("ABCD")
AB2 = Alphabet("AB", bits=1)
