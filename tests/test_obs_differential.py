"""Observability must never perturb behaviour.

Every layer runs the same workload twice -- once bare, once with an
``Observability`` bundle attached (including deep re-execution) -- and
the results AND the beat accounting must be bit-identical.
"""

from __future__ import annotations

import pytest

from repro import Alphabet, Observability, PatternMatcher, multipass_match
from repro.alphabet import parse_pattern
from repro.chip.cascade import ChipCascade
from repro.chip.chip import ChipSpec, PatternMatchingChip
from repro.obs import MetricsRegistry
from repro.service import FaultInjector, MatcherService, uniform_pool
from repro.service.scheduler import Priority

AB = Alphabet("ABCD")
TEXT = "ABCAACACCABDBCADBACABCAACACCABDBCADBACA"


def _drain(obs):
    pool = uniform_pool(3, ChipSpec(8, 2), AB)
    svc = MatcherService(
        pool,
        faults=FaultInjector(seed=11, p_death=0.15, p_stuck=0.15),
        obs=obs,
    )
    for i in range(8):
        svc.submit(
            "AXC",
            TEXT * (1 + i % 3),
            tenant=f"t{i % 2}",
            priority=Priority.INTERACTIVE if i % 4 == 0 else Priority.BATCH,
        )
    results = svc.drain()
    return svc, [
        (r.job_id, r.results, r.finished_beat, r.mode, r.workers, r.attempts)
        for r in results
    ]


class TestMatcherDifferential:
    def test_match_and_report_identical(self):
        bare = PatternMatcher("AXC", AB)
        traced = PatternMatcher("AXC", AB, obs=Observability())
        assert bare.match(TEXT) == traced.match(TEXT)
        rb = bare.report(TEXT)
        rt = traced.report(TEXT)
        assert rb.results == rt.results
        assert rb.beats == rt.beats
        assert rb.utilization == rt.utilization

    def test_detach_restores_bare_behaviour(self):
        m = PatternMatcher("AB", AB, obs=Observability())
        m.attach_obs(None)
        assert m.obs is None
        assert m.match(TEXT) == PatternMatcher("AB", AB).match(TEXT)


class TestChipAndCascadeDifferential:
    def test_chip_report_identical(self):
        bare = PatternMatchingChip(ChipSpec(8, 2), AB)
        traced = PatternMatchingChip(ChipSpec(8, 2), AB)
        traced.attach_obs(Observability())
        for chip in (bare, traced):
            chip.load_pattern("AXC")
        rb, rt = bare.report(TEXT), traced.report(TEXT)
        assert rb.results == rt.results
        assert rb.beats == rt.beats

    def test_cascade_match_identical(self):
        bare = ChipCascade(ChipSpec(4, 2), 3, AB)
        traced = ChipCascade(ChipSpec(4, 2), 3, AB)
        obs = Observability()
        traced.attach_obs(obs)
        pattern = "AXCABCAAC"  # needs more than one chip
        for c in (bare, traced):
            c.load_pattern(pattern)
        assert bare.match(TEXT) == traced.match(TEXT)
        assert bare.chain.beat == traced.chain.beat
        span = obs.tracer.find("cascade.match")[0]
        assert span.t1 == float(traced.chain.beat)


class TestMultipassDifferential:
    def test_multipass_identical(self):
        pattern = parse_pattern("ABCAACAC", AB)
        obs = Observability()
        bare = multipass_match(pattern, list(TEXT), 3)
        traced = multipass_match(pattern, list(TEXT), 3, obs=obs)
        assert bare == traced
        runs = obs.tracer.find("multipass.run")
        assert len(runs) >= 2  # long pattern on a small array: many passes
        # Each pass wraps exactly one array.run child.
        for span in runs:
            child_names = [s.name for s in obs.tracer.children(span)]
            assert child_names == ["array.run"]


class TestServiceDifferential:
    def test_faulted_farm_identical_with_obs(self):
        svc_off, off = _drain(None)
        svc_on, on = _drain(Observability(deep=True))
        assert off == on
        # Aggregate telemetry agrees too (same scheduling decisions).
        for attr in ("submitted", "completed", "retries", "deaths",
                     "stuck_events", "fallbacks", "makespan_beats",
                     "text_chars_served"):
            assert getattr(svc_off.telemetry, attr) == \
                getattr(svc_on.telemetry, attr), attr
        for name, w_off in svc_off.telemetry.workers.items():
            w_on = svc_on.telemetry.workers[name]
            assert w_off.busy_beats == pytest.approx(w_on.busy_beats)
            assert w_off.executions == w_on.executions

    def test_deep_trace_cross_checks_agree(self):
        svc, _ = _drain(Observability(deep=True))
        matches = svc.obs.tracer.find("worker.match")
        assert matches
        checked = [s for s in matches if "array_agrees" in s.attrs]
        assert checked, "deep mode must re-drive the stepwise array"
        assert all(s.attrs["array_agrees"] for s in checked)

    def test_shared_registry_sees_service_metrics(self):
        obs = Observability()
        svc, _ = _drain(obs)
        assert svc.telemetry.registry is obs.registry
        assert obs.registry.value("service.jobs.completed") == 8
        assert obs.registry.value("service.jobs.submitted") == 8

    def test_obs_off_attaches_nothing(self):
        svc, _ = _drain(None)
        assert svc.obs is None
        # Private registry still backs telemetry (attribute API unchanged).
        assert isinstance(svc.telemetry.registry, MetricsRegistry)
        assert svc.telemetry.completed == 8
