"""Differential tests for the Section 3.4 workload kernels.

Three independent implementations of every workload must agree:

* ``fast``     -- the packed/strided kernels in :mod:`repro.core.fastpath`
* ``oracle``   -- the direct definition (``count_oracle`` and friends)
* ``stepwise`` -- the behavioral cell-by-cell :mod:`repro.extensions`
  machines (the executable spec of the paper's cells)

and, for the counting kernel, the gate-level accumulator netlist provides
a fourth, transistor-level cross-check: a window counts ``L`` matches iff
the switch-level matcher reports a match there.

Numeric streams are drawn as integer-valued floats: float64 arithmetic on
them is exact regardless of summation order, so the three engines must be
*equal*, not merely close, and the farm can mix fast and oracle shard
provenance without tolerance bookkeeping.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Alphabet, FastCounter, count_oracle, parse_pattern
from repro.core.fastpath import (
    FastMatcher,
    fast_inner_products,
    fast_squared_distances,
)
from repro.core.reference import correlation_oracle
from repro.errors import PatternError
from repro.extensions import systolic_convolution, systolic_match_counts
from repro.workloads import WorkloadError, get_workload, list_workloads, run_workload

AB = Alphabet("ABCD")

char_patterns = st.text(alphabet="ABCDX", min_size=1, max_size=12)
char_streams = st.text(alphabet="ABCD", min_size=0, max_size=60)
int_floats = st.integers(-8, 8).map(float)
taps_lists = st.lists(int_floats, min_size=1, max_size=8)
numeric_streams = st.lists(int_floats, min_size=0, max_size=60)


class TestFastCounter:
    @settings(max_examples=60, deadline=None)
    @given(char_patterns, char_streams)
    def test_agrees_with_oracle_and_stepwise_cells(self, pattern, text):
        parsed = parse_pattern(pattern, AB)
        fast = FastCounter(pattern, AB).counts(text)
        assert fast == count_oracle(parsed, list(text))
        assert fast == systolic_match_counts(pattern, text, AB)

    def test_wildcards_always_count(self):
        assert FastCounter("XX", AB).counts("ABCD") == [0, 2, 2, 2]

    def test_invalid_symbol_raises_alphabet_error(self):
        with pytest.raises(Exception):
            FastCounter("AB", AB).counts("AZ")

    def test_long_pattern_spans_many_lanes(self):
        pattern = "ABCD" * 10  # 40 lanes, 6 bits each
        text = "ABCD" * 25
        parsed = parse_pattern(pattern, AB)
        assert FastCounter(pattern, AB).counts(text) == count_oracle(
            parsed, list(text)
        )


class TestNumericKernels:
    @settings(max_examples=60, deadline=None)
    @given(taps_lists, numeric_streams)
    def test_squared_distances_agree(self, taps, stream):
        assert fast_squared_distances(taps, stream) == correlation_oracle(
            taps, stream
        )

    @settings(max_examples=60, deadline=None)
    @given(taps_lists, numeric_streams)
    def test_inner_products_agree_with_definition(self, taps, stream):
        k = len(taps) - 1
        want = [0.0] * min(k, len(stream)) + [
            sum(taps[j] * stream[i - k + j] for j in range(len(taps)))
            for i in range(k, len(stream))
        ]
        assert fast_inner_products(taps, stream) == want

    def test_convolution_matches_numpy(self):
        h, x = [1.0, -2.0, 3.0], [4.0, 0.0, -1.0, 2.0, 5.0]
        assert run_workload("convolution", h, x) == list(
            np.convolve(h, x).astype(float)
        )
        assert systolic_convolution(h, x) == list(np.convolve(h, x))

    def test_empty_taps_rejected(self):
        with pytest.raises(ValueError):
            fast_inner_products([], [1.0])
        with pytest.raises(ValueError):
            fast_squared_distances([], [1.0])


class TestRegistryEngines:
    @settings(max_examples=40, deadline=None)
    @given(
        st.sampled_from(["correlation", "inner-product", "convolution", "fir"]),
        taps_lists,
        numeric_streams,
    )
    def test_numeric_engines_agree(self, name, taps, stream):
        spec = get_workload(name)
        fast = spec.run(taps, stream, engine="fast")
        assert fast == spec.run(taps, stream, engine="oracle")
        assert fast == spec.run(taps, stream, engine="stepwise")

    @settings(max_examples=40, deadline=None)
    @given(
        st.sampled_from(["match", "count"]), char_patterns, char_streams
    )
    def test_char_engines_agree(self, name, pattern, text):
        spec = get_workload(name)
        fast = spec.run(pattern, text, AB, engine="fast")
        assert fast == spec.run(pattern, text, AB, engine="oracle")
        assert fast == spec.run(pattern, text, AB, engine="stepwise")

    def test_real_float_taps_match_oracle_closely(self):
        """Non-integer floats: fast vs stepwise may differ in summation
        order, so assert closeness there (fast vs oracle share order)."""
        taps = [0.1, -0.25, 1.7]
        stream = [0.3, 1.1, -2.2, 0.7, 5.5, -0.4]
        spec = get_workload("fir")
        fast = spec.run(taps, stream)
        step = spec.run(taps, stream, engine="stepwise")
        assert fast == pytest.approx(step, rel=1e-12, abs=1e-12)

    def test_unknown_workload_and_missing_alphabet(self):
        with pytest.raises(WorkloadError):
            get_workload("sorting")
        with pytest.raises(WorkloadError):
            run_workload("count", "AB", "AB")  # no alphabet
        with pytest.raises(PatternError):
            run_workload("fir", [], [1.0])

    def test_registry_lists_all_section_34_kernels(self):
        assert list_workloads() == [
            "convolution", "correlation", "count", "fir",
            "inner-product", "match",
        ]
        for name in list_workloads():
            spec = get_workload(name)
            assert spec.section in {"3.1", "3.4"}


class TestGateLevelCrossCheck:
    def test_full_count_iff_gate_level_match(self):
        """Transistor-level anchor: the counting kernel reports a full
        window count exactly where the switch-level accumulator netlist
        reports a match -- tying the numeric workload engine back to the
        paper's actual circuit."""
        from repro.circuit.chipnet import GateLevelMatcher

        pattern, text = "AXC", "ABCAACACCAB"
        L = len(pattern)
        counts = FastCounter(pattern, AB).counts(text)
        gate = GateLevelMatcher(pattern, AB).match(text)
        assert [c == L for c in counts] == gate
        fast_match = FastMatcher(pattern, AB).match(text)
        assert gate == fast_match
