"""Property: farm-served workloads equal the behavioral oracle.

``MatcherService.submit(workload=...)`` routes Section 3.4 kernels
through the same scheduler as match jobs -- direct placement, multipass
for windows longer than a worker, halo-overlap text sharding, retry after
worker death, degradation to the workload's oracle.  None of that routing
may change a single output value: for random taps, streams, shard
geometries and fault seeds, the farm's answer must equal the workload's
direct oracle definition (exactly -- streams are integer-valued floats,
so float64 arithmetic is order-independent and exact).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Alphabet
from repro.chip.chip import ChipSpec
from repro.obs import Observability
from repro.service import (
    FaultInjector,
    MatcherService,
    Priority,
    SchedulerConfig,
    uniform_pool,
)
from repro.workloads import get_workload, list_workloads

AB = Alphabet("ABCD")

KERNELS = ["count", "correlation", "inner-product", "convolution", "fir"]

int_floats = st.integers(-6, 6).map(float)


@st.composite
def farm_workloads(draw):
    names = draw(
        st.lists(st.sampled_from(KERNELS), min_size=1, max_size=6)
    )
    jobs = []
    for name in names:
        spec = get_workload(name)
        n_taps = draw(st.integers(1, 10))
        n_samples = draw(st.sampled_from([0, 3, 40, 120]))
        if spec.numeric:
            taps = draw(
                st.lists(int_floats, min_size=n_taps, max_size=n_taps)
            )
            stream = draw(
                st.lists(int_floats, min_size=n_samples, max_size=n_samples)
            )
        else:
            taps = draw(
                st.text(alphabet="ABCDX", min_size=n_taps, max_size=n_taps)
            )
            stream = draw(
                st.text(alphabet="ABCD", min_size=n_samples,
                        max_size=n_samples)
            )
        jobs.append((name, taps, stream))
    fault_seed = draw(st.integers(0, 2**16))
    p_death = draw(st.sampled_from([0.0, 0.1, 0.3]))
    p_stuck = draw(st.sampled_from([0.0, 0.2]))
    n_workers = draw(st.integers(1, 4))
    n_cells = draw(st.sampled_from([4, 6, 8]))
    return jobs, fault_seed, p_death, p_stuck, n_workers, n_cells


@settings(max_examples=25, deadline=None)
@given(farm_workloads())
def test_farm_kernels_equal_oracle_under_faults(case):
    jobs, fault_seed, p_death, p_stuck, n_workers, n_cells = case
    pool = uniform_pool(n_workers, ChipSpec(n_cells, 2), AB)
    svc = MatcherService(
        pool,
        config=SchedulerConfig(
            queue_capacity=len(jobs) + 1,
            wide_text_threshold=48,
            min_shard_chars=12,
            max_retries=1,
        ),
        faults=FaultInjector(seed=fault_seed, p_death=p_death,
                             p_stuck=p_stuck),
    )
    ids = [
        svc.submit(
            taps,
            stream,
            tenant=f"tenant-{i % 3}",
            priority=Priority.INTERACTIVE if i % 2 else Priority.BATCH,
            workload=name,
        )
        for i, (name, taps, stream) in enumerate(jobs)
    ]
    results = {r.job_id: r for r in svc.drain()}
    assert len(results) == len(jobs)
    for jid, (name, taps, stream) in zip(ids, jobs):
        want = get_workload(name).run(taps, stream, AB, engine="oracle")
        got = results[jid]
        assert got.workload == name
        assert got.results == want, (
            f"job {jid} ({name}: {taps!r} on {len(stream)} samples) routed "
            f"as {got.mode}/attempts={got.attempts} diverged"
        )


def test_seeded_kernel_storm_covers_every_routing_path():
    """Deterministic storm across all kernels: sharding, multipass,
    retry-reassignment and oracle fallback all fire, and every output
    still equals the oracle."""
    rng = random.Random(406)
    pool = uniform_pool(3, ChipSpec(6, 2), AB)
    svc = MatcherService(
        pool,
        config=SchedulerConfig(
            queue_capacity=64,
            wide_text_threshold=60,
            min_shard_chars=16,
            max_retries=1,
        ),
        faults=FaultInjector(seed=9, p_death=0.12, p_stuck=0.15),
    )
    jobs = []
    # First job submitted against an all-idle pool: guaranteed sharding.
    first = ("fir", [1.0, -2.0], [float(rng.randint(-4, 4))
                                  for _ in range(150)])
    jobs.append((svc.submit(first[1], first[2], workload=first[0]), *first))
    for i in range(35):
        name = rng.choice(KERNELS)
        spec = get_workload(name)
        n_taps = rng.randint(1, 10)   # > 6 cells -> multipass accounting
        n = rng.randint(0, 140)
        if spec.numeric:
            taps = [float(rng.randint(-4, 4)) for _ in range(n_taps)]
            stream = [float(rng.randint(-4, 4)) for _ in range(n)]
        else:
            taps = "".join(rng.choice("ABCDX") for _ in range(n_taps))
            stream = "".join(rng.choice("ABCD") for _ in range(n))
        jobs.append((svc.submit(taps, stream, tenant=f"t{i % 4}",
                                workload=name), name, taps, stream))
    results = {r.job_id: r for r in svc.drain()}
    for jid, name, taps, stream in jobs:
        want = get_workload(name).run(taps, stream, AB, engine="oracle")
        assert results[jid].results == want
    modes = {r.mode for r in results.values()}
    assert {"direct", "multipass", "text-sharded"} <= modes
    assert any(r.attempts > 0 for r in results.values())
    assert svc.telemetry.deaths > 0
    by_workload = svc.telemetry.by_workload
    assert set(by_workload) <= set(KERNELS)
    assert sum(s["jobs"] for s in by_workload.values()) == len(jobs)
    assert "workloads" in svc.report()


def test_workload_spans_and_deep_oracle_check():
    """Kernel executions trace as worker.kernel spans; deep mode re-checks
    every execution against the oracle and records agreement."""
    obs = Observability(deep=True)
    pool = uniform_pool(2, ChipSpec(8, 2), AB)
    svc = MatcherService(pool, obs=obs)
    jid = svc.submit([1.0, 2.0, 3.0], [float(v % 5) for v in range(40)],
                     workload="fir")
    svc.submit("ABX", "ABCDABCA", workload="count")
    svc.drain()
    spans = [s for s in obs.tracer.spans if s.name == "worker.kernel"]
    assert spans, "kernel executions must record worker.kernel spans"
    assert all(s.attrs.get("oracle_agrees") is True for s in spans)
    workloads_seen = {s.attrs["workload"] for s in spans}
    assert workloads_seen == {"fir", "count"}
    job_spans = [s for s in obs.tracer.spans if s.name == "service.job"]
    assert {s.attrs.get("workload") for s in job_spans} == {"fir", "count"}
    assert svc.results()[0].job_id == jid


def test_backpressure_degrades_kernels_to_oracle():
    pool = uniform_pool(1, ChipSpec(8, 2), AB)
    svc = MatcherService(
        pool,
        config=SchedulerConfig(queue_capacity=1,
                               degrade_when_saturated=True),
    )
    taps, streams = [2.0, -1.0], []
    ids = []
    for i in range(6):
        stream = [float((i * 7 + j) % 5 - 2) for j in range(30)]
        streams.append(stream)
        ids.append(svc.submit(taps, stream, workload="correlation"))
    results = {r.job_id: r for r in svc.drain()}
    spec = get_workload("correlation")
    for jid, stream in zip(ids, streams):
        assert results[jid].results == spec.run(taps, stream,
                                                engine="oracle")
    assert any(r.mode == "software" for r in results.values())
    assert svc.telemetry.backpressure_hits > 0


def test_empty_streams_complete_immediately():
    pool = uniform_pool(1, ChipSpec(8, 2), AB)
    svc = MatcherService(pool)
    for name in KERNELS:
        spec = get_workload(name)
        params = [1.0, 2.0] if spec.numeric else "AB"
        jid = svc.submit(params, [] if spec.numeric else "", workload=name)
        assert svc.drain()[-1].job_id == jid
        assert svc.results()[-1].results == []


def test_submit_many_routes_workloads():
    pool = uniform_pool(2, ChipSpec(8, 2), AB)
    svc = MatcherService(pool)
    streams = [[1.0, 2.0, 3.0, 4.0], [0.0, -1.0, 5.0]]
    ids = svc.submit_many([1.0, 1.0], streams, workload="inner-product")
    results = {r.job_id: r for r in svc.drain()}
    spec = get_workload("inner-product")
    for jid, stream in zip(ids, streams):
        assert results[jid].results == spec.run([1.0, 1.0], stream,
                                                engine="oracle")
