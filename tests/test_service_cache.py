"""The cross-tenant result cache: bounds, identity, fault-proof hits.

The load-bearing properties:

* a cache **hit is byte-identical to a cold run** even when the cold run
  rode through seeded worker deaths and retries -- caching can never
  change an answer, only its latency;
* entries are keyed on canonicalized workload **params**: change the
  pattern, the taps, or the workload name and the old entry can never be
  served (the invalidation-by-identity property);
* LRU with three bounds -- entry count, total values, TTL -- all
  enforced at the clock the caller supplies (beats here, seconds in the
  runtime), never wall time.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Alphabet, match_oracle, parse_pattern
from repro.chip.chip import ChipSpec
from repro.errors import ServiceError
from repro.service import (
    FaultInjector,
    MatcherService,
    ResultCache,
    result_cache_key,
    uniform_pool,
)

AB = Alphabet("ABCD")


def oracle(pattern, text):
    return match_oracle(parse_pattern(pattern, AB), list(text))


class TestKeying:
    def test_same_job_same_key_across_spellings(self):
        a = result_cache_key("match", parse_pattern("AXC", AB), "ABCA", False)
        b = result_cache_key("match", parse_pattern("AXC", AB), "ABCA", False)
        assert a == b

    def test_params_differ_key_differs(self):
        text = "ABCAACACCAB"
        k1 = result_cache_key("match", parse_pattern("AXC", AB), text, False)
        k2 = result_cache_key("match", parse_pattern("AXB", AB), text, False)
        k3 = result_cache_key("count", parse_pattern("AXC", AB), text, False)
        assert len({k1, k2, k3}) == 3

    def test_numeric_taps_in_key(self):
        s = [1.0, 2.0, 3.0]
        k1 = result_cache_key("fir", [1.0, 2.0], s, True)
        k2 = result_cache_key("fir", [1.0, 3.0], s, True)
        assert k1 != k2

    def test_stream_content_digest(self):
        taps = [1.0]
        k1 = result_cache_key("fir", taps, [1.0, 2.0], True)
        k2 = result_cache_key("fir", taps, [1.0, 2.5], True)
        k3 = result_cache_key("fir", taps, [1.0, 2.0], True)
        assert k1 != k2 and k1 == k3


class TestBounds:
    def test_lru_eviction_order(self):
        cache = ResultCache(max_entries=2)
        keys = [result_cache_key("match", [], str(i), False) for i in range(3)]
        cache.put(keys[0], [True])
        cache.put(keys[1], [False])
        assert cache.get(keys[0]) == [True]  # refresh 0: now 1 is LRU
        cache.put(keys[2], [True, False])
        assert cache.get(keys[1]) is None and cache.evictions == 1
        assert cache.get(keys[0]) == [True]

    def test_value_budget_evicts(self):
        cache = ResultCache(max_values=10)
        k1 = result_cache_key("match", [], "a", False)
        k2 = result_cache_key("match", [], "b", False)
        cache.put(k1, [True] * 8)
        cache.put(k2, [False] * 8)  # 16 > 10: k1 must go
        assert cache.get(k1) is None and cache.get(k2) == [False] * 8
        assert cache.stats()["values"] == 8

    def test_oversized_result_not_cached(self):
        cache = ResultCache(max_values=4)
        key = result_cache_key("match", [], "abcdef", False)
        cache.put(key, [True] * 6)
        assert len(cache) == 0 and cache.get(key) is None

    def test_ttl_expiry_on_callers_clock(self):
        cache = ResultCache(ttl=100.0)
        key = result_cache_key("match", [], "x", False)
        cache.put(key, [True], now=50.0)
        assert cache.get(key, now=149.0) == [True]
        assert cache.get(key, now=151.0) is None
        assert cache.expirations == 1

    def test_restore_refreshes_age(self):
        cache = ResultCache(ttl=100.0)
        key = result_cache_key("match", [], "x", False)
        cache.put(key, [True], now=0.0)
        cache.put(key, [True], now=90.0)
        assert cache.get(key, now=150.0) == [True]

    def test_hit_returns_a_copy(self):
        cache = ResultCache()
        key = result_cache_key("match", [], "x", False)
        cache.put(key, [True, False])
        got = cache.get(key)
        got[0] = "mutated"
        assert cache.get(key) == [True, False]

    def test_invalidate_and_clear(self):
        cache = ResultCache()
        key = result_cache_key("match", [], "x", False)
        cache.put(key, [True])
        assert cache.invalidate(key) and not cache.invalidate(key)
        cache.put(key, [True])
        cache.clear()
        assert len(cache) == 0 and cache.stats()["values"] == 0

    def test_bad_bounds_rejected(self):
        for kwargs in ({"max_entries": 0}, {"max_values": 0}, {"ttl": 0.0}):
            with pytest.raises(ServiceError):
                ResultCache(**kwargs)

    def test_per_tenant_telemetry(self):
        cache = ResultCache()
        key = result_cache_key("match", [], "x", False)
        cache.get(key, tenant="alice")
        cache.put(key, [True])
        cache.get(key, tenant="bob")
        by = cache.stats()["by_tenant"]
        assert by["alice"] == {"hits": 0, "misses": 1}
        assert by["bob"] == {"hits": 1, "misses": 0}
        assert 0.0 < cache.hit_rate() < 1.0


class TestFaultProofHits:
    """Satellite: hits byte-identical to cold runs with faults active."""

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(0, 10_000),
        st.text(alphabet="ABCDX", min_size=1, max_size=6),
        st.lists(
            st.text(alphabet="ABCD", min_size=0, max_size=40),
            min_size=1,
            max_size=6,
        ),
    )
    def test_hit_equals_cold_run_under_seeded_faults(self, seed, pattern, texts):
        cache = ResultCache()
        svc = MatcherService(
            uniform_pool(2, ChipSpec(8, 2), AB),
            faults=FaultInjector(seed=seed, p_death=0.25),
            cache=cache,
        )
        cold_ids = svc.submit_many(pattern, texts, tenant="cold")
        cold = svc.drain()
        # Same jobs again: every non-empty text must now be a pure hit...
        warm_ids = svc.submit_many(pattern, texts, tenant="warm")
        warm = svc.drain()
        for cid, wid, text in zip(cold_ids, warm_ids, texts):
            assert warm[wid].results == cold[cid].results == oracle(
                pattern, text
            )
            if text:
                assert warm[wid].mode == "cached"
                assert warm[wid].service_beats == 0.0
        # ...and hits agree with a fault-free service that never cached.
        clean = MatcherService(uniform_pool(2, ChipSpec(8, 2), AB))
        clean_ids = clean.submit_many(pattern, texts)
        clean_res = clean.drain()
        for wid, kid in zip(warm_ids, clean_ids):
            assert warm[wid].results == clean_res[kid].results

    def test_changed_params_never_served_from_cache(self):
        cache = ResultCache()
        svc = MatcherService(
            uniform_pool(2, ChipSpec(8, 2), AB), cache=cache
        )
        text = "ABCAACACCAB" * 3
        svc.submit("AXC", text)
        svc.drain()
        jid = svc.submit("AXB", text)  # same text, different pattern
        r = svc.drain()[jid]
        assert r.mode != "cached"
        assert r.results == oracle("AXB", text)
        jid2 = svc.submit("AXC", text, workload="count")
        r2 = svc.drain()[jid2]
        assert r2.mode != "cached"

    def test_cache_counters_fold_into_registry(self):
        from repro.obs import Observability

        obs = Observability()
        cache = ResultCache(registry=obs.registry)
        svc = MatcherService(
            uniform_pool(1, ChipSpec(8, 2), AB), cache=cache, obs=obs
        )
        svc.submit("AB", "ABAB")
        svc.drain()
        svc.submit("AB", "ABAB")
        svc.drain()
        snap = obs.registry.snapshot()
        assert any(k.startswith("service.cache.") for k in snap)
        assert cache.hits == 1
