"""Packaged chips, the Figure 3-7 cascade, and the Plate 2 prototype."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Alphabet, match_oracle, parse_pattern
from repro.chip import ChipCascade, PatternMatchingChip, PrototypeChip
from repro.chip.chip import ChipSpec
from repro.chip.prototype import DESIGN_EFFORT_MAN_MONTHS, PROTOTYPE
from repro.errors import ChipError, PatternError

from conftest import AB4, patterns, texts


class TestChipSpec:
    def test_prototype_parameters(self):
        assert PROTOTYPE.n_cells == 8
        assert PROTOTYPE.char_bits == 2
        assert PROTOTYPE.beat_ns == 250.0

    def test_extensibility_pin_set(self):
        """Section 3.4: pattern/text outputs and a result input exist."""
        pins = PROTOTYPE.pins
        for required in ("R_IN", "R_OUT", "LAM_OUT", "P_OUT0", "S_OUT1"):
            assert required in pins

    def test_invalid_specs_rejected(self):
        with pytest.raises(ChipError):
            ChipSpec(n_cells=0, char_bits=2)
        with pytest.raises(ChipError):
            ChipSpec(n_cells=4, char_bits=0)
        with pytest.raises(ChipError):
            ChipSpec(n_cells=4, char_bits=2, beat_ns=-1)


class TestPatternMatchingChip:
    def test_requires_loaded_pattern(self, ab4):
        chip = PatternMatchingChip(ChipSpec(4, 2), ab4)
        with pytest.raises(ChipError):
            chip.match("AB")

    def test_capacity_enforced(self, ab4):
        chip = PatternMatchingChip(ChipSpec(2, 2), ab4)
        with pytest.raises(PatternError):
            chip.load_pattern("ABC")

    def test_alphabet_width_enforced(self):
        wide = Alphabet("ABCDEFGH")  # 3 bits
        with pytest.raises(ChipError):
            PatternMatchingChip(ChipSpec(4, 2), wide)

    def test_zero_beat_pattern_reload(self, ab4):
        """Recirculation means a new pattern costs no array beats -- the
        advantage over the rejected static design."""
        chip = PatternMatchingChip(ChipSpec(4, 2), ab4)
        chip.load_pattern("AB")
        first = chip.match("ABAB")
        chip.load_pattern("BA")
        second = chip.match("ABAB")
        assert first == [False, True, False, True]
        assert second == [False, False, True, False]

    def test_multipass_for_long_patterns(self, ab4):
        chip = PatternMatchingChip(ChipSpec(2, 2), ab4)
        text = "ABCDABCD"
        got = chip.match_long_pattern("ABCD", text)
        assert got == match_oracle(parse_pattern("ABCD", ab4), list(text))

    def test_timing_report(self, ab4):
        chip = PatternMatchingChip(ChipSpec(4, 2), ab4)
        chip.load_pattern("AB")
        rep = chip.report("ABAB")
        assert chip.elapsed_ns(rep) == rep.beats * 250.0
        assert chip.text_rate_chars_per_s() == pytest.approx(2e6)


class TestPrototype:
    def test_plate2_configuration(self):
        chip = PrototypeChip()
        assert chip.max_pattern_length == 8
        assert chip.alphabet.bits == 2
        assert chip.data_rate_mchars_per_s() == pytest.approx(4.0)

    def test_design_effort_constant(self):
        assert DESIGN_EFFORT_MAN_MONTHS == 2.0

    def test_full_capacity_pattern(self):
        chip = PrototypeChip()
        chip.load_pattern("ABCDABCD")
        text = "ABCDABCDABCDABCD"
        want = match_oracle(parse_pattern("ABCDABCD", chip.alphabet), list(text))
        assert chip.match(text) == want


class TestCascade:
    def test_capacity_is_kn(self, ab4):
        """'A cascade of k chips with n cells each can match patterns of
        up to kn characters.'"""
        casc = ChipCascade(ChipSpec(8, 2), 5, ab4)
        assert casc.capacity == 40

    def test_figure_3_7_five_chips(self, ab4):
        casc = ChipCascade(ChipSpec(2, 2), 5, ab4)
        pattern = "ABCDABCDAB"  # length 10 = full 5x2 capacity
        casc.load_pattern(pattern)
        text = "AABCDABCDABCDABCDABA"
        want = match_oracle(parse_pattern(pattern, ab4), list(text))
        assert casc.match(text) == want

    def test_over_capacity_rejected(self, ab4):
        casc = ChipCascade(ChipSpec(2, 2), 2, ab4)
        with pytest.raises(PatternError):
            casc.load_pattern("ABCDA")

    def test_rate_independent_of_chip_count(self, ab4):
        one = ChipCascade(ChipSpec(4, 2), 1, ab4)
        five = ChipCascade(ChipSpec(4, 2), 5, ab4)
        assert one.data_rate_chars_per_s() == five.data_rate_chars_per_s()

    def test_requires_loaded_pattern(self, ab4):
        with pytest.raises(ChipError):
            ChipCascade(ChipSpec(2, 2), 2, ab4).match("AB")

    @settings(max_examples=25, deadline=None)
    @given(pattern=patterns(max_len=6), text=texts(max_len=20),
           chips=st.integers(1, 3))
    def test_matches_oracle(self, pattern, text, chips):
        spec = ChipSpec(2, 2)
        if len(pattern) > 2 * chips:
            pattern = pattern[: 2 * chips]
        casc = ChipCascade(spec, chips, AB4)
        casc.load_pattern(pattern)
        want = match_oracle(parse_pattern(pattern, AB4), list(text))
        assert casc.match(text) == want
