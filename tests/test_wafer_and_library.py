"""Section 5 outlook systems: wafer-scale integration and the cell library."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Alphabet, match_oracle, parse_pattern
from repro.core.array import SystolicMatcherArray
from repro.errors import ChipError, ReproError
from repro.library import CellEntry, CellLibrary, standard_library
from repro.streams import RecirculatingPattern
from repro.wafer import (
    Wafer,
    expected_harvest_fraction,
    harvest_linear_array,
    monolithic_yield,
)
from repro.wafer.reconfigure import matcher_from_harvest, serpentine_order
from repro.wafer.yield_model import break_even_size, cells_per_wafer, long_run_probability

from conftest import AB4


class TestWafer:
    def test_defect_free_wafer(self):
        w = Wafer(4, 8, defect_rate=0.0)
        assert w.n_functional == 32

    def test_defects_reproducible_by_seed(self):
        a = Wafer(10, 10, defect_rate=0.3, seed=42)
        b = Wafer(10, 10, defect_rate=0.3, seed=42)
        assert a.defect_map() == b.defect_map()
        assert 0 < a.n_functional < 100

    def test_defect_injection(self):
        w = Wafer(2, 2)
        w.mark_defective(0, 1)
        assert w.n_functional == 3
        assert "X" in w.defect_map()

    def test_invalid_parameters(self):
        with pytest.raises(ChipError):
            Wafer(0, 4)
        with pytest.raises(ChipError):
            Wafer(2, 2, defect_rate=1.0)


class TestReconfiguration:
    def test_serpentine_visits_every_site_once(self):
        w = Wafer(3, 4)
        order = serpentine_order(w)
        assert len(order) == 12
        assert len({s.position for s in order}) == 12
        # row 1 is traversed right-to-left
        assert [s.position for s in order[4:8]] == [(1, 3), (1, 2), (1, 1), (1, 0)]

    def test_harvest_skips_defects(self):
        w = Wafer(2, 4)
        w.mark_defective(0, 2)
        w.mark_defective(1, 0)
        harvest = harvest_linear_array(w)
        assert harvest.n_cells == 6
        assert (0, 2) in harvest.bypassed and (1, 0) in harvest.bypassed
        assert harvest.worst_bypass_run == 1

    def test_bypass_budget_enforced(self):
        w = Wafer(1, 8)
        for c in range(2, 6):
            w.mark_defective(0, c)  # run of 4
        assert harvest_linear_array(w, max_bypass_run=4).n_cells == 4
        with pytest.raises(ChipError):
            harvest_linear_array(w, max_bypass_run=3)

    def test_matcher_runs_on_harvested_array(self):
        """The paper's point: the machine still works around defects."""
        w = Wafer(3, 4, defect_rate=0.25, seed=7)
        harvest = harvest_linear_array(w)
        assert 0 < harvest.n_cells < 12
        pattern = parse_pattern("AXC", AB4)
        array = matcher_from_harvest(harvest, n_cells=max(3, harvest.n_cells))
        raw = array.run(RecirculatingPattern(pattern).items, "ABCAACACCAB")
        got = [bool(raw.get(i, False)) if i >= 2 else False for i in range(11)]
        assert got == match_oracle(pattern, list("ABCAACACCAB"))

    def test_empty_harvest_rejected(self):
        w = Wafer(1, 2)
        w.mark_defective(0, 0)
        w.mark_defective(0, 1)
        harvest = harvest_linear_array(w)
        with pytest.raises(ChipError):
            matcher_from_harvest(harvest)

    def test_cannot_request_more_than_harvested(self):
        harvest = harvest_linear_array(Wafer(1, 3))
        with pytest.raises(ChipError):
            matcher_from_harvest(harvest, n_cells=4)


class TestYieldModel:
    def test_monolithic_yield_collapses_geometrically(self):
        assert monolithic_yield(1, 0.05) == pytest.approx(0.95)
        assert monolithic_yield(100, 0.05) < 0.01
        assert monolithic_yield(24, 0.05) == pytest.approx(0.95 ** 24)

    def test_harvest_fraction_flat_in_size(self):
        assert expected_harvest_fraction(0.05) == pytest.approx(0.95)
        assert cells_per_wafer(100, 100, 0.05) == pytest.approx(9500)

    def test_break_even_small_at_real_defect_rates(self):
        n = break_even_size(0.05)
        assert 1 <= n <= 10  # reconfiguration wins almost immediately

    def test_long_run_probability_bounds(self):
        assert long_run_probability(1000, 0.05, run=4) <= 1000 * 0.05 ** 5
        assert long_run_probability(10, 0.9, run=0) == 1.0

    @settings(max_examples=20, deadline=None)
    @given(rate=st.floats(min_value=0.0, max_value=0.5),
           n=st.integers(1, 200))
    def test_monotonicity(self, rate, n):
        assert 0.0 <= monolithic_yield(n, rate) <= 1.0
        assert monolithic_yield(n + 1, rate) <= monolithic_yield(n, rate)

    def test_invalid_arguments(self):
        with pytest.raises(ChipError):
            monolithic_yield(0, 0.1)
        with pytest.raises(ChipError):
            expected_harvest_fraction(1.5)


class TestCellLibrary:
    def test_standard_catalogue(self):
        lib = standard_library()
        assert "inner-product-step" in lib  # the paper's own example
        assert {"matcher", "match-counter", "correlator"} <= set(lib.names())
        assert len(lib) >= 5
        assert "inner-product-step" in lib.catalogue()

    def test_selected_cell_actually_computes(self):
        """Select the inner product step cell 'rather than construct it':
        plug it into the array and verify sliding inner products."""
        from repro.extensions.correlation import NumericPatternItem

        lib = standard_library()
        entry = lib.get("inner-product-step")
        array = SystolicMatcherArray(3, kernel_factory=entry.make_kernel)
        items = [NumericPatternItem(v, i == 2) for i, v in enumerate([1.0, 2.0, 3.0])]
        raw = array.run(items, [1.0, 1.0, 1.0, 2.0])
        assert raw[2] == pytest.approx(6.0)   # [1,1,1] . [1,2,3]
        assert raw[3] == pytest.approx(9.0)   # [1,1,2] . [1,2,3]

    def test_matcher_cell_from_library(self):
        lib = standard_library()
        array = SystolicMatcherArray(2, kernel_factory=lib.get("matcher").make_kernel)
        pattern = parse_pattern("AB", AB4)
        raw = array.run(RecirculatingPattern(pattern).items, "CABAB")
        got = [bool(raw.get(i, False)) if i >= 1 else False for i in range(5)]
        assert got == match_oracle(pattern, list("CABAB"))

    def test_duplicate_registration_rejected(self):
        lib = CellLibrary()
        entry = CellEntry("x", "test", lambda i: None)
        lib.register(entry)
        with pytest.raises(ReproError):
            lib.register(entry)

    def test_unknown_cell_helpful_error(self):
        with pytest.raises(ReproError, match="available"):
            standard_library().get("flux-capacitor")
