"""Regression tests for TraceRecorder trimming and error reporting.

``max_beats`` drops old beats from the front; every derived view
(``activity_matrix``, ``channel_history``, ``meetings``) must stay
consistent with the *suffix* of an untrimmed recording of the same run.
Unknown channels must fail with a :class:`~repro.errors.SimulationError`
that lists what actually was recorded.
"""

from __future__ import annotations

import pytest

from repro import parse_pattern
from repro.core.array import SystolicMatcherArray
from repro.errors import SimulationError
from repro.streams import RecirculatingPattern
from repro.systolic.tracing import TraceRecorder

from conftest import AB4

TEXT = "ABCABCDDABCA"


def _run(recorder, pattern="ABC", n_cells=3, text=TEXT):
    arr = SystolicMatcherArray(n_cells, recorder=recorder)
    items = RecirculatingPattern(parse_pattern(pattern, AB4)).items
    arr.run(items, text)
    return recorder


class TestTrimmingConsistency:
    N = 7

    @pytest.fixture()
    def pair(self):
        full = _run(TraceRecorder())
        trimmed = _run(TraceRecorder(max_beats=self.N))
        assert len(full.beats) > self.N  # the workload must overflow N
        return full, trimmed

    def test_trimmed_keeps_exact_suffix_of_beats(self, pair):
        full, trimmed = pair
        assert len(trimmed.beats) == self.N
        assert [bt.beat for bt in trimmed.beats] == \
            [bt.beat for bt in full.beats[-self.N:]]

    def test_activity_matrix_is_suffix(self, pair):
        full, trimmed = pair
        assert trimmed.activity_matrix() == full.activity_matrix()[-self.N:]

    @pytest.mark.parametrize("channel", ["p", "s", "r"])
    def test_channel_history_is_suffix(self, pair, channel):
        full, trimmed = pair
        assert trimmed.channel_history(channel) == \
            full.channel_history(channel)[-self.N:]

    def test_meetings_are_meetings_since_first_kept_beat(self, pair):
        full, trimmed = pair
        first_kept = trimmed.beats[0].beat
        want = [m for m in full.meetings("p", "s") if m[0] >= first_kept]
        assert trimmed.meetings("p", "s") == want

    def test_max_beats_larger_than_run_keeps_everything(self):
        full = _run(TraceRecorder())
        roomy = _run(TraceRecorder(max_beats=10_000))
        assert len(roomy.beats) == len(full.beats)
        assert roomy.activity_matrix() == full.activity_matrix()


class TestUnknownChannelErrors:
    @pytest.fixture()
    def rec(self):
        return _run(TraceRecorder())

    def test_channel_history_unknown_lists_recorded(self, rec):
        with pytest.raises(SimulationError) as exc:
            rec.channel_history("zz")
        msg = str(exc.value)
        assert "'zz'" in msg
        for ch in ("p", "s", "r"):
            assert f"'{ch}'" in msg

    def test_meetings_unknown_first_channel(self, rec):
        with pytest.raises(SimulationError) as exc:
            rec.meetings("nope", "s")
        assert "'nope'" in str(exc.value)

    def test_meetings_unknown_second_channel(self, rec):
        with pytest.raises(SimulationError) as exc:
            rec.meetings("p", "nope")
        assert "'nope'" in str(exc.value)

    def test_empty_recorder_views_do_not_raise(self):
        rec = TraceRecorder()
        assert rec.channel_history("anything") == []
        assert rec.activity_matrix() == []
        assert rec.meetings("a", "b") == []
