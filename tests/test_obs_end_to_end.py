"""End-to-end observability: one service job traced down to the circuit.

The ISSUE acceptance case: submit one job to a ``MatcherService`` with
``trace_circuit`` observability and follow its span ancestry from
``service.job`` through execution, worker, chip, and array down to
switch-level ``circuit.settle`` spans -- then round-trip the whole trace
through export/save/load/replay and the CLI.
"""

from __future__ import annotations

import json

import pytest

from repro import Alphabet, Observability, match_oracle, parse_pattern
from repro.chip.chip import ChipSpec
from repro.obs.__main__ import main as obs_main
from repro.obs.replay import render_report, trace_report
from repro.obs.trace import Tracer
from repro.service import MatcherService, uniform_pool

AB = Alphabet("ABCD")


@pytest.fixture(scope="module")
def traced_run():
    obs = Observability(trace_circuit=True, circuit_char_limit=16)
    pool = uniform_pool(1, ChipSpec(4, 2), AB)
    svc = MatcherService(pool, obs=obs)
    svc.submit("AXC", "ABCAACACCAB", tenant="e2e")
    results = svc.drain()
    return obs, svc, results


class TestSpanChain:
    def test_results_still_oracle(self, traced_run):
        _, _, results = traced_run
        assert results[0].results == match_oracle(
            parse_pattern("AXC", AB), list("ABCAACACCAB")
        )

    def test_job_span_closed_with_outcome(self, traced_run):
        obs, _, results = traced_run
        jobs = obs.tracer.find("service.job")
        assert len(jobs) == 1
        job = jobs[0]
        assert not job.open
        assert job.t1 == results[0].finished_beat
        assert job.attrs["tenant"] == "e2e"
        assert job.attrs["mode"] == "direct"
        assert job.attrs["via_fallback"] is False

    def test_ancestry_reaches_from_settle_to_job(self, traced_run):
        obs, _, _ = traced_run
        settles = obs.tracer.find("circuit.settle")
        assert settles, "trace_circuit must record settle spans"
        names = [s.name for s in obs.tracer.ancestry(settles[0])]
        # Innermost parent first: the gate-level run, the worker match,
        # the shard execution, then the job itself.
        assert names == [
            "gate.match", "worker.match", "service.execution", "service.job"
        ]

    def test_array_level_spans_nest_under_worker(self, traced_run):
        obs, _, _ = traced_run
        runs = obs.tracer.find("array.run")
        assert runs
        names = [s.name for s in obs.tracer.ancestry(runs[0])]
        assert names[:2] == ["chip.report", "worker.match"]
        assert names[-1] == "service.job"

    def test_cross_level_agreement_attrs(self, traced_run):
        obs, _, _ = traced_run
        wm = obs.tracer.find("worker.match")[0]
        assert wm.attrs["array_agrees"] is True
        assert wm.attrs["circuit_agrees"] is True
        assert wm.attrs["engine"] == "fastpath"

    def test_metrics_published_at_every_level(self, traced_run):
        obs, svc, _ = traced_run
        r = obs.registry
        assert r.value("service.jobs.completed") == 1
        assert r.value("worker.matches", worker="chip-0") == 1
        # Array beats from the deep re-drive, labelled by chip name.
        assert r.value("array.beats", array=svc.pool.workers[0].backend.spec.name) > 0
        assert r.value("circuit.settle.calls", circuit="chip") > 0


class TestExportReplay:
    def test_save_load_report(self, traced_run, tmp_path):
        obs, _, results = traced_run
        path = tmp_path / "trace.json"
        obs.save(str(path))
        data = Observability.load(str(path))
        report = trace_report(data)
        assert report["jobs"]["count"] == 1
        assert report["jobs"]["latency_max_beats"] == pytest.approx(
            results[0].latency_beats
        )
        workers = report["workers"]
        assert "chip-0" in workers
        assert workers["chip-0"]["executions"] == 1
        # Depth section sees the re-driven array and circuit work.
        assert report["depth"]["array_beats"] > 0
        assert report["depth"]["settle_calls"] > 0
        # Rendered report is printable text.
        out = render_report(report)
        assert "jobs" in out and "chip-0" in out

    def test_tracer_round_trip_preserves_ancestry(self, traced_run):
        obs, _, _ = traced_run
        back = Tracer.from_dict(json.loads(json.dumps(obs.tracer.to_dict())))
        settle = back.find("circuit.settle")[0]
        assert [s.name for s in back.ancestry(settle)][-1] == "service.job"


class TestCLI:
    def test_replay_command(self, traced_run, tmp_path, capsys):
        obs, _, _ = traced_run
        trace = tmp_path / "trace.json"
        out_json = tmp_path / "report.json"
        obs.save(str(trace))
        rc = obs_main(["replay", str(trace), "--json", str(out_json)])
        assert rc == 0
        assert "jobs" in capsys.readouterr().out
        report = json.loads(out_json.read_text())
        assert report["jobs"]["count"] == 1

    def test_demo_command(self, tmp_path, capsys):
        trace = tmp_path / "demo.json"
        rc = obs_main(
            ["demo", "--workers", "2", "--jobs", "3", "--repeat", "1",
             "--trace", str(trace)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "span tree" in out
        data = json.loads(trace.read_text())
        assert data["format"] == 1
        assert any(s["name"] == "service.job" for s in data["spans"])
