"""Unit tests for the observability core: metrics registry and tracer."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError, ReproError
from repro.obs import MetricsRegistry, Observability, Tracer
from repro.obs.replay import percentile


class TestMetricsRegistry:
    def test_counter_get_or_create_and_inc(self):
        r = MetricsRegistry()
        c = r.counter("jobs.done", tenant="a")
        c.inc()
        c.inc(4)
        assert r.counter("jobs.done", tenant="a") is c
        assert r.value("jobs.done", tenant="a") == 5
        # A different label set is a different series.
        r.counter("jobs.done", tenant="b").inc()
        assert r.value("jobs.done", tenant="b") == 1
        assert len(r.series("jobs.done")) == 2

    def test_counter_rejects_negative_increment(self):
        r = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            r.counter("c").inc(-1)

    def test_gauge_set_inc_dec(self):
        r = MetricsRegistry()
        g = r.gauge("depth")
        g.set(7)
        g.inc(2)
        g.dec(4)
        assert g.value == 5

    def test_histogram_buckets_and_mean(self):
        r = MetricsRegistry()
        h = r.histogram("lat", buckets=[1.0, 10.0, 100.0])
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == pytest.approx(555.5)
        assert h.mean == pytest.approx(555.5 / 4)
        # One observation per bucket plus one overflow.
        assert h.bucket_counts == [1, 1, 1, 1]

    def test_kind_conflict_raises(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(ObservabilityError):
            r.gauge("x")
        with pytest.raises(ObservabilityError):
            r.histogram("x")

    def test_observability_error_is_repro_error(self):
        assert issubclass(ObservabilityError, ReproError)

    def test_value_default_for_missing_series(self):
        r = MetricsRegistry()
        assert r.value("nope", default=3.5) == 3.5

    def test_snapshot_is_json_shaped(self):
        import json

        r = MetricsRegistry()
        r.counter("a", k="v").inc(2)
        r.gauge("g").set(1.5)
        r.histogram("h").observe(3)
        snap = r.snapshot()
        json.dumps(snap)  # must be serialisable
        assert snap["a"][0]["value"] == 2
        assert snap["a"][0]["labels"] == {"k": "v"}
        assert snap["h"][0]["count"] == 1

    def test_render_mentions_names(self):
        r = MetricsRegistry()
        r.counter("array.beats", array="a0").inc(12)
        out = r.render()
        assert "array.beats" in out


class TestTracer:
    def test_begin_end_nesting_via_stack(self):
        t = Tracer()
        outer = t.begin("outer", t0=0.0)
        inner = t.begin("inner", t0=1.0)
        t.end(inner, t1=2.0)
        t.end(outer, t1=3.0)
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # ancestry excludes the span itself, innermost parent first.
        assert [s.name for s in t.ancestry(inner)] == ["outer"]
        assert outer.duration == 3.0

    def test_open_close_does_not_touch_stack(self):
        t = Tracer()
        job = t.open_span("job", t0=0.0)
        # The async span must not become the parent of later stack spans.
        outer = t.begin("outer", t0=0.0)
        child = t.begin("child", t0=1.0)
        assert child.parent_id == outer.span_id
        assert outer.parent_id is None
        assert job.parent_id is None
        t.end(child, t1=2.0)
        t.end(outer, t1=2.0)
        t.close(job, t1=5.0, mode="direct")
        assert job.t1 == 5.0
        assert job.attrs["mode"] == "direct"

    def test_record_with_explicit_parent(self):
        t = Tracer()
        parent = t.open_span("job", t0=0.0)
        s = t.record("exec", t0=1.0, t1=4.0, parent=parent, worker="w0")
        assert s.parent_id == parent.span_id
        assert s.duration == 3.0
        assert t.children(parent) == [s]

    def test_nest_reenters_span_context(self):
        t = Tracer()
        s = t.record("exec", t0=0.0, t1=1.0)
        with t.nest(s):
            child = t.record("deep", t0=0.0, t1=1.0)
        after = t.record("other", t0=0.0, t1=1.0)
        assert child.parent_id == s.span_id
        assert after.parent_id is None

    def test_span_contextmanager_uses_clock(self):
        t = Tracer()
        clock = {"now": 10.0}
        with t.span("work", clock=lambda: clock["now"]) as s:
            clock["now"] = 25.0
        assert (s.t0, s.t1) == (10.0, 25.0)

    def test_events_and_find(self):
        t = Tracer()
        t.event("queue.depth", t=3.0, depth=2)
        t.event("queue.depth", t=4.0, depth=1)
        assert len(t.events) == 2
        t.record("a", t0=0, t1=1)
        assert [s.name for s in t.find("a")] == ["a"]

    def test_bounded_spans_drop_oldest_count(self):
        t = Tracer(max_spans=3)
        for i in range(5):
            t.record(f"s{i}", t0=0, t1=1)
        assert len(t.spans) == 3
        assert t.dropped_spans == 2

    def test_round_trip_to_from_dict(self):
        t = Tracer()
        a = t.begin("a", t0=0.0, k=1)
        t.end(a, t1=2.0)
        t.event("e", t=1.0, x="y")
        data = t.to_dict()
        back = Tracer.from_dict(data)
        assert [s.name for s in back.spans] == ["a"]
        assert back.spans[0].attrs == {"k": 1}
        assert back.events[0].name == "e"

    def test_render_tree_indents_children(self):
        t = Tracer()
        outer = t.begin("outer", t0=0.0)
        t.end(t.begin("inner", t0=0.5), t1=1.0)
        t.end(outer, t1=2.0)
        out = t.render_tree()
        assert "outer" in out and "  inner" in out


class TestObservabilityBundle:
    def test_defaults(self):
        obs = Observability()
        assert obs.deep is False and obs.trace_circuit is False
        assert isinstance(obs.registry, MetricsRegistry)
        assert isinstance(obs.tracer, Tracer)

    def test_trace_circuit_implies_deep(self):
        assert Observability(trace_circuit=True).deep is True

    def test_export_save_load(self, tmp_path):
        obs = Observability()
        obs.registry.counter("c").inc()
        obs.tracer.record("s", t0=0, t1=1)
        path = tmp_path / "trace.json"
        obs.save(str(path))
        data = Observability.load(str(path))
        assert data["format"] == 1
        assert data["metrics"]["c"][0]["value"] == 1
        assert data["spans"][0]["name"] == "s"


def test_percentile_nearest_rank():
    vals = [1.0, 2.0, 3.0, 4.0]
    assert percentile(vals, 0) == 1.0
    assert percentile(vals, 100) == 4.0
    assert percentile([1.0, 2.0, 3.0], 50) == 2.0
    assert percentile([], 50) == 0.0
    assert percentile([7.0], 95) == 7.0
