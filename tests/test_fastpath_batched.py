"""Property: the batched kernels are the per-job fast kernels, many at once.

Every batched evaluator in :mod:`repro.core.fastpath` -- the
multi-pattern :class:`FastMatcherBank`/:class:`FastCounterBank` (many
patterns x one text) and the ``*_many`` family (one pattern x many
texts/streams) -- must agree element for element with a loop of the
per-job kernels, and therefore (transitively, via ``test_fastpath`` and
``test_workloads_kernels``) with the stepwise arrays and the oracle.
Ragged batches (mixed pattern lengths, mixed text lengths) and the
empty batch are first-class cases, not edge cases.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Alphabet, FastCounter, FastMatcher
from repro.core.fastpath import (
    FastCounterBank,
    FastMatcherBank,
    fast_counts_many,
    fast_inner_products,
    fast_inner_products_many,
    fast_match_many,
    fast_squared_distances,
    fast_squared_distances_many,
)
from repro.errors import AlphabetError

AB = Alphabet("ABCD")

char_patterns = st.text(alphabet="ABCDX", min_size=1, max_size=12)
char_texts = st.text(alphabet="ABCD", min_size=0, max_size=60)
int_floats = st.integers(-8, 8).map(float)
taps_lists = st.lists(int_floats, min_size=1, max_size=8)
numeric_streams = st.lists(int_floats, min_size=0, max_size=40)


class TestBanks:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(char_patterns, min_size=1, max_size=8), char_texts)
    def test_matcher_bank_is_a_loop_of_fast_matchers(self, patterns, text):
        bank = FastMatcherBank(patterns, AB)
        rows = bank.match_all(text)
        assert len(rows) == len(patterns)
        for pattern, row in zip(patterns, rows):
            assert row == FastMatcher(pattern, AB).match(text)

    @settings(max_examples=80, deadline=None)
    @given(st.lists(char_patterns, min_size=1, max_size=8), char_texts)
    def test_counter_bank_is_a_loop_of_fast_counters(self, patterns, text):
        bank = FastCounterBank(patterns, AB)
        rows = bank.counts_all(text)
        for pattern, row in zip(patterns, rows):
            assert row == FastCounter(pattern, AB).counts(text)

    def test_bank_metadata(self):
        bank = FastMatcherBank(["AB", "AXCD"], AB)
        assert len(bank) == 2
        assert bank.pattern_strings == ["AB", "AXCD"]

    def test_empty_bank_matches_nothing(self):
        bank = FastMatcherBank([], AB)
        assert len(bank) == 0 and bank.match_all("ABC") == []

    def test_bank_out_of_alphabet_text(self):
        bank = FastMatcherBank(["AB"], AB)
        with pytest.raises(AlphabetError):
            bank.match_all("AZ")


class TestManyTexts:
    @settings(max_examples=80, deadline=None)
    @given(char_patterns, st.lists(char_texts, min_size=0, max_size=8))
    def test_match_many_is_a_loop_of_fast_matchers(self, pattern, texts):
        rows = fast_match_many(pattern, texts, AB)
        assert len(rows) == len(texts)
        for text, row in zip(texts, rows):
            assert row == FastMatcher(pattern, AB).match(text)

    @settings(max_examples=80, deadline=None)
    @given(char_patterns, st.lists(char_texts, min_size=0, max_size=8))
    def test_counts_many_is_a_loop_of_fast_counters(self, pattern, texts):
        rows = fast_counts_many(pattern, texts, AB)
        for text, row in zip(texts, rows):
            assert row == FastCounter(pattern, AB).counts(text)

    def test_empty_batch(self):
        assert fast_match_many("AB", [], AB) == []
        assert fast_counts_many("AB", [], AB) == []

    def test_ragged_texts_including_empty_and_short(self):
        texts = ["", "A", "ABAB", "ABCDABCD" * 4]
        rows = fast_match_many("ABX", texts, AB)
        assert rows[0] == [] and rows[1] == [False]
        for text, row in zip(texts, rows):
            assert row == FastMatcher("ABX", AB).match(text)

    def test_out_of_alphabet_in_any_member_raises(self):
        with pytest.raises(AlphabetError):
            fast_match_many("AB", ["ABCD", "AZ"], AB)


class TestManyStreams:
    @settings(max_examples=80, deadline=None)
    @given(taps_lists, st.lists(numeric_streams, min_size=0, max_size=8))
    def test_inner_products_many(self, taps, streams):
        rows = fast_inner_products_many(taps, streams)
        assert len(rows) == len(streams)
        for stream, row in zip(streams, rows):
            assert row == fast_inner_products(taps, stream)

    @settings(max_examples=80, deadline=None)
    @given(taps_lists, st.lists(numeric_streams, min_size=0, max_size=8))
    def test_squared_distances_many(self, taps, streams):
        rows = fast_squared_distances_many(taps, streams)
        for stream, row in zip(streams, rows):
            assert row == fast_squared_distances(taps, stream)

    def test_empty_taps_rejected(self):
        with pytest.raises(ValueError):
            fast_inner_products_many([], [[1.0]])
        with pytest.raises(ValueError):
            fast_squared_distances_many([], [[1.0]])

    def test_empty_batch(self):
        assert fast_inner_products_many([1.0], []) == []
        assert fast_squared_distances_many([1.0], []) == []
