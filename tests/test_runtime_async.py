"""Policy-level tests for :class:`repro.runtime.AsyncMatcherService`:
differential equivalence against the synchronous farm and the oracle
for every registered workload, fault/retry/fallback behaviour, SLO
deadlines, admission control, and observability merge-back."""

import asyncio

import pytest

from repro.alphabet import Alphabet
from repro.chip.chip import ChipSpec
from repro.errors import BackpressureError, ServiceError
from repro.obs import Observability
from repro.runtime import AsyncMatcherService, RuntimeConfig, WorkerPool
from repro.service.pool import uniform_pool
from repro.service.reliability import FaultInjector
from repro.service.service import MatcherService
from repro.workloads.registry import get_workload, list_workloads

AB = Alphabet("ABCD")

# One text/stream per workload kind, long enough to be interesting.
CHAR_TEXT = "ABCDACBDABCACDBA" * 12
NUM_STREAM = [((i * 37) % 19) - 9.0 for i in range(150)]

PARAMS = {
    "match": "ABXC",
    "count": "AXC",
    "correlation": [1.0, -2.0, 0.5],
    "inner-product": [0.5, 1.5, -1.0, 2.0],
    "convolution": [1.0, 2.0, 3.0],
    "fir": [0.25, 0.5, 0.25],
}


def _input_for(name):
    spec = get_workload(name)
    return PARAMS[name], (NUM_STREAM if spec.numeric else CHAR_TEXT)


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def shared_pool():
    pool = WorkerPool(2, AB).start()
    yield pool
    pool.shutdown()


class TestDifferential:
    def test_every_workload_matches_sync_service_and_oracle(
        self, shared_pool
    ):
        """The tentpole acceptance bar: async-runtime results are
        byte-identical to the synchronous MatcherService and to the
        workload oracle, for every registered workload."""

        async def go():
            svc = AsyncMatcherService(pool=shared_pool)
            await svc.start()
            out = {}
            for name in list_workloads():
                params, stream = _input_for(name)
                jid = await svc.submit(params, stream, workload=name)
                out[name] = (await svc.result(jid)).results
            return out

        async_results = run(go())
        sync_svc = MatcherService(uniform_pool(4, ChipSpec(8, 2), AB))
        for name in list_workloads():
            params, stream = _input_for(name)
            sync_svc.submit(params, stream, workload=name)
        sync_by_workload = {r.workload: r.results for r in sync_svc.drain()}
        for name in list_workloads():
            params, stream = _input_for(name)
            oracle = get_workload(name).run(params, stream, AB,
                                            engine="oracle")
            assert async_results[name] == oracle, name
            assert sync_by_workload[name] == oracle, name

    def test_equivalence_under_seeded_faults(self):
        """Deaths and retries reroute work; they never change answers."""

        async def go():
            async with AsyncMatcherService(
                2, AB, faults=FaultInjector(seed=7, p_death=0.35),
            ) as svc:
                for name in list_workloads():
                    params, stream = _input_for(name)
                    await svc.submit(params, stream, workload=name)
                results = await svc.drain()
                return results, svc.deaths, svc.fallbacks

        results, deaths, fallbacks = run(go())
        assert deaths > 0  # the seed genuinely injected faults
        by_workload = {r.workload: r for r in results}
        for name in list_workloads():
            params, stream = _input_for(name)
            oracle = get_workload(name).run(params, stream, AB,
                                            engine="oracle")
            assert by_workload[name].results == oracle, name

    def test_empty_stream_completes_immediately(self, shared_pool):
        async def go():
            svc = AsyncMatcherService(pool=shared_pool)
            await svc.start()
            jid = await svc.submit("AB", "")
            return await svc.result(jid)

        r = run(go())
        assert r.results == [] and r.mode == "empty"


class TestReliabilityPolicy:
    def test_retries_then_fallback_exhaustion(self, shared_pool):
        """With p_death=1 every attempt dies: the job burns its retry
        budget and lands on the oracle fallback."""

        async def go():
            svc = AsyncMatcherService(
                pool=shared_pool,
                faults=FaultInjector(seed=1, p_death=1.0),
                config=RuntimeConfig(max_retries=2),
            )
            await svc.start()
            jid = await svc.submit("AB", "ABAB" * 8)
            r = await svc.result(jid)
            return r, svc.retries, svc.deaths

        r, retries, deaths = run(go())
        assert r.via_fallback and r.mode == "software"
        assert r.attempts == 3  # initial + 2 retries, all dead
        assert retries == 2 and deaths == 3
        expect = get_workload("match").run("AB", "ABAB" * 8, AB,
                                           engine="oracle")
        assert r.results == expect

    def test_deadline_sheds_stalled_worker(self):
        """A stuck worker cannot wedge the drain: the deadline fires,
        the job completes degraded, and the late reply is dropped."""

        async def go():
            async with AsyncMatcherService(
                1, AB,
                faults=FaultInjector(seed=3, p_stuck=1.0,
                                     stuck_beats=(500, 500)),
                config=RuntimeConfig(stuck_stall_s=0.002),  # 1s stall
            ) as svc:
                jid = await svc.submit("AB", "ABAB" * 4, timeout=0.2)
                r = await svc.result(jid)
                stats = svc.stats()
                return r, stats

        r, stats = run(go())
        assert r.timed_out and r.via_fallback
        assert stats["timeouts"] == 1
        expect = get_workload("match").run("AB", "ABAB" * 4, AB,
                                           engine="oracle")
        assert r.results == expect

    def test_timeout_validation(self, shared_pool):
        async def go():
            svc = AsyncMatcherService(pool=shared_pool)
            await svc.start()
            with pytest.raises(ServiceError):
                await svc.submit("AB", "ABAB", timeout=0.0)

        run(go())


class TestAdmission:
    def test_rate_limit_suspends_submitter(self, shared_pool):
        async def go():
            svc = AsyncMatcherService(
                pool=shared_pool,
                config=RuntimeConfig(rate_limits={"slow": (10.0, 2)}),
            )
            await svc.start()
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            await svc.submit_many("AB", ["ABAB"] * 5, tenant="slow")
            elapsed = loop.time() - t0
            await svc.drain()
            return elapsed, svc.limiter.waits

        elapsed, waits = run(go())
        # Beyond the burst of 2, submits had to wait for 10/s tokens.
        assert waits >= 1
        assert elapsed >= 0.08

    def test_saturation_degrades_to_oracle(self):
        async def go():
            async with AsyncMatcherService(
                1, AB,
                faults=FaultInjector(seed=3, p_stuck=1.0,
                                     stuck_beats=(200, 200)),
                config=RuntimeConfig(max_pending=1, stuck_stall_s=0.002),
            ) as svc:
                a = await svc.submit("AB", "ABAB" * 4)   # occupies the pool
                b = await svc.submit("AB", "ABBA" * 4)   # sheds to oracle
                rb = await svc.result(b)
                ra = await svc.result(a)
                return ra, rb, svc.backpressure_hits

        ra, rb, hits = run(go())
        assert hits == 1
        assert rb.via_fallback and rb.mode == "software"
        assert rb.results == get_workload("match").run(
            "AB", "ABBA" * 4, AB, engine="oracle"
        )
        assert ra.results == get_workload("match").run(
            "AB", "ABAB" * 4, AB, engine="oracle"
        )

    def test_saturation_rejects_when_degrade_off(self):
        async def go():
            async with AsyncMatcherService(
                1, AB,
                faults=FaultInjector(seed=3, p_stuck=1.0,
                                     stuck_beats=(200, 200)),
                config=RuntimeConfig(
                    max_pending=1, stuck_stall_s=0.002,
                    degrade_when_saturated=False,
                ),
            ) as svc:
                await svc.submit("AB", "ABAB" * 4)
                with pytest.raises(BackpressureError):
                    await svc.submit("AB", "ABBA" * 4)
                await svc.drain()

        run(go())


class TestApi:
    def test_submit_before_start_raises(self):
        async def go():
            svc = AsyncMatcherService(1, AB)
            with pytest.raises(ServiceError):
                await svc.submit("AB", "ABAB")

        run(go())

    def test_stream_results_completion_order(self, shared_pool):
        async def go():
            svc = AsyncMatcherService(pool=shared_pool)
            await svc.start()
            jids = await svc.submit_many("AB", ["ABAB" * 20] * 5)
            seen = [r.job_id async for r in svc.stream_results(jids)]
            return set(seen), len(seen)

        seen, n = run(go())
        assert n == 5 and len(seen) == 5

    def test_drain_returns_job_id_order(self, shared_pool):
        async def go():
            svc = AsyncMatcherService(pool=shared_pool)
            await svc.start()
            await svc.submit_many("AB", ["AB" * k for k in (9, 3, 6)])
            results = await svc.drain()
            return [r.job_id for r in results]

        order = run(go())
        assert order == sorted(order)

    def test_config_validation(self):
        with pytest.raises(ServiceError):
            RuntimeConfig(max_pending=0)
        with pytest.raises(ServiceError):
            RuntimeConfig(max_retries=-1)
        with pytest.raises(ServiceError):
            RuntimeConfig(default_timeout_s=0.0)
        with pytest.raises(ServiceError):
            RuntimeConfig(stuck_stall_s=-1.0)

    def test_unknown_job_id(self, shared_pool):
        async def go():
            svc = AsyncMatcherService(pool=shared_pool)
            await svc.start()
            with pytest.raises(ServiceError):
                await svc.result(999)

        run(go())


class TestObservability:
    def test_worker_spans_and_metrics_merge_back(self):
        # Four per-job submits: each crosses the wire on its own, so
        # each gets its own worker-process kernel span merged back.
        async def go():
            obs = Observability()
            async with AsyncMatcherService(2, AB, obs=obs) as svc:
                for _ in range(4):
                    await svc.submit("AXC", "ABCDABCA" * 10)
                await svc.drain()
            return obs

        obs = run(go())
        spans = obs.tracer.to_dict()["spans"]
        jobs = [s for s in spans if s["name"] == "runtime.job"]
        kernels = [s for s in spans if s["name"] == "worker.kernel"]
        assert len(jobs) == 4 and len(kernels) == 4
        job_ids = {s["span_id"] for s in jobs}
        # Every worker-process kernel span was re-parented under the
        # host-side runtime.job span it served.
        assert all(k["parent_id"] in job_ids for k in kernels)
        snap = obs.registry.snapshot()
        worker_jobs = sum(
            row["value"] for row in snap.get("runtime.worker.jobs", [])
        )
        assert worker_jobs == 4
        assert "runtime.pool.dispatched" in snap

    def test_batched_submit_many_spans(self):
        # submit_many coalesces: distinct texts become one batch plan,
        # one wire crossing, one batched worker.kernel span; duplicate
        # texts dedup into followers and never cross at all.
        texts = ["ABCDABCA" * (i + 1) for i in range(3)]
        async def go():
            obs = Observability()
            async with AsyncMatcherService(2, AB, obs=obs) as svc:
                await svc.submit_many("AXC", texts + [texts[0]])
                results = await svc.drain()
            return obs, results

        obs, results = run(go())
        spans = obs.tracer.to_dict()["spans"]
        jobs = [s for s in spans if s["name"] == "runtime.job"]
        kernels = [s for s in spans if s["name"] == "worker.kernel"]
        assert len(jobs) == 4
        assert len(kernels) == 1
        assert kernels[0]["attrs"]["engine"] == "batched"
        assert kernels[0]["attrs"]["jobs"] == 3
        modes = sorted(r.mode for r in results)
        assert modes == ["batched", "batched", "batched", "deduped"]
        snap = obs.registry.snapshot()
        worker_jobs = sum(
            row["value"] for row in snap.get("runtime.worker.jobs", [])
        )
        assert worker_jobs == 3
