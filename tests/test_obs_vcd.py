"""VCD waveform export: writer, parser round-trip, circuit probes.

The acceptance case drives the paper's Figure 3-6 comparator cell
through real clocked exchanges and checks that the captured VCD parses
cleanly: strictly monotonic timestamps, only declared id codes, legal
01xz states.
"""

from __future__ import annotations

import pytest

from repro.circuit.cells.comparator import build_comparator
from repro.circuit.chipnet import GateLevelMatcher, MatcherArrayNetlist
from repro.circuit.netlist import Circuit
from repro.circuit.signals import HIGH, LOW
from repro.errors import ObservabilityError
from repro.obs.vcd import (
    CircuitProbe,
    VCDWriter,
    parse_vcd,
    render_waves,
    vcd_value,
)

from conftest import AB2


class TestVCDWriter:
    def test_declare_change_dump_round_trip(self):
        w = VCDWriter(module="test")
        w.declare("clk")
        w.declare("data")
        w.change(0, "clk", 0)
        w.change(0, "data", "x")
        w.change(5, "clk", 1)
        w.change(10, "clk", 0)
        w.change(10, "data", 1)
        text = w.dump()
        trace = parse_vcd(text)
        assert set(trace.signals) == {"clk", "data"}
        assert trace.history("clk") == [(0, "0"), (5, "1"), (10, "0")]
        assert trace.history("data") == [(0, "x"), (10, "1")]
        assert trace.value_at("clk", 7) == "1"

    def test_change_only_emission(self):
        w = VCDWriter()
        w.declare("s")
        for t in range(5):
            w.change(t, "s", 1)  # constant: only the initial dump emits
        trace = parse_vcd(w.dump())
        assert trace.history("s") == [(0, "1")]

    def test_undeclared_signal_raises(self):
        w = VCDWriter()
        with pytest.raises(ObservabilityError):
            w.change(0, "ghost", 1)

    def test_same_timestamp_last_wins(self):
        w = VCDWriter()
        w.declare("s")
        w.change(3, "s", 0)
        w.change(3, "s", 1)
        trace = parse_vcd(w.dump())
        assert trace.value_at("s", 3) == "1"

    def test_save(self, tmp_path):
        w = VCDWriter()
        w.declare("s")
        w.change(0, "s", 1)
        path = tmp_path / "out.vcd"
        w.save(str(path))
        assert parse_vcd(path.read_text()).history("s") == [(0, "1")]

    def test_vcd_value_coercions(self):
        assert vcd_value(True) == "1"
        assert vcd_value(0) == "0"
        assert vcd_value(HIGH) == "1"
        assert vcd_value(LOW) == "0"
        assert vcd_value("z") == "z"


class TestParserValidation:
    def test_rejects_backwards_time(self):
        bad = "\n".join(
            ["$timescale 1 ns $end", "$var wire 1 ! s $end",
             "$enddefinitions $end", "#5", "1!", "#3", "0!"]
        )
        with pytest.raises(ObservabilityError):
            parse_vcd(bad)

    def test_rejects_undeclared_id_code(self):
        bad = "\n".join(
            ["$timescale 1 ns $end", "$var wire 1 ! s $end",
             "$enddefinitions $end", "#0", '1"']
        )
        with pytest.raises(ObservabilityError):
            parse_vcd(bad)

    def test_rejects_illegal_state(self):
        bad = "\n".join(
            ["$timescale 1 ns $end", "$var wire 1 ! s $end",
             "$enddefinitions $end", "#0", "q!"]
        )
        with pytest.raises(ObservabilityError):
            parse_vcd(bad)


class TestCircuitProbe:
    def test_comparator_figure_3_6_round_trips(self):
        """Clock the Figure 3-6 comparator; the VCD must parse clean."""
        c = Circuit("comparator")
        ports = build_comparator(c, "u.", "clk", positive=True)
        probe = CircuitProbe(
            c,
            {
                "clk": "clk",
                "p_in": ports["p_in"],
                "s_in": ports["s_in"],
                "d_in": ports["d_in"],
                "p_out": ports["p_out"],
                "s_out": ports["s_out"],
                "d_out": ports["d_out"],
            },
        )
        # Exchange a few (p, s, d) triples through real two-phase beats.
        for p, s, d in [(1, 1, 1), (0, 1, 1), (1, 0, 0), (1, 1, 0)]:
            c.set_input(ports["p_in"], p)
            c.set_input(ports["s_in"], s)
            c.set_input(ports["d_in"], d)
            c.set_input("clk", HIGH)
            c.settle()
            c.advance_time(100.0)
            c.set_input("clk", LOW)
            c.settle()
            c.advance_time(25.0)
        text = probe.writer.dump()
        trace = parse_vcd(text)  # validates monotonicity/states/ids
        assert set(trace.signals) == {
            "clk", "p_in", "s_in", "d_in", "p_out", "s_out", "d_out"
        }
        # The clock actually toggled in the capture.
        clk_states = [v for _, v in trace.history("clk")]
        assert "1" in clk_states and "0" in clk_states
        # Timestamps strictly increase (already parser-enforced; assert
        # the run produced more than a single sample too).
        times = trace.times
        assert times == sorted(set(times)) and len(times) > 4

    def test_probe_rejects_unknown_node(self):
        c = Circuit()
        with pytest.raises(ObservabilityError):
            CircuitProbe(c, {"sig": "no.such.node"})

    def test_netlist_default_probe_round_trips(self):
        net = MatcherArrayNetlist(2, 1)
        probe = net.vcd_probe()
        for b in range(6):
            net.pulse(b)
        trace = parse_vcd(probe.writer.dump())
        assert "phi1" in trace.signals and "pin.p0" in trace.signals
        phi1 = [v for _, v in trace.history("phi1")]
        assert "1" in phi1 and "0" in phi1

    def test_gate_level_match_with_probe_agrees(self):
        m = GateLevelMatcher("AB", AB2, retention_ns=1e9)
        probe = m.net.vcd_probe()
        text = list("ABAB")
        got = m.match(text)
        assert got == [False, True, False, True]
        trace = parse_vcd(probe.writer.dump())
        # r_out toggles at least once across a matching run.
        assert len(trace.history("r_out")) >= 2

    def test_detach_stops_sampling(self):
        c = Circuit()
        c.set_input("a", LOW)
        c.settle()
        probe = CircuitProbe(c, {"a": "a"})
        probe.detach()
        c.set_input("a", HIGH)
        c.advance_time(10.0)
        c.settle()
        trace = parse_vcd(probe.writer.dump())
        # Only the initial sample is present.
        assert all(t == 0 for t in trace.times)


def test_render_waves_ascii():
    w = VCDWriter()
    w.declare("clk")
    for t in range(0, 8):
        w.change(t * 10, "clk", t % 2)
    out = render_waves(w.dump(), ["clk"])
    assert "clk" in out
