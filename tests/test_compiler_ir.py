"""The compiler front end: specs, IR elaboration, validation, placement."""

import pytest

from repro.compiler.ir import (
    CONST_ONE,
    build_logical_db,
    build_net_to_cells,
    elaborate,
    validate_ir,
)
from repro.compiler.library import library_for
from repro.compiler.place import place
from repro.compiler.spec import KERNELS, ChipSpec, CompileError


class TestChipSpec:
    def test_rejects_unknown_kernel(self):
        with pytest.raises(CompileError):
            ChipSpec("sorting", cells=8)

    def test_rejects_degenerate_sizes(self):
        with pytest.raises(CompileError):
            ChipSpec("match", cells=1)
        with pytest.raises(CompileError):
            ChipSpec("match", cells=8, char_bits=0)
        with pytest.raises(CompileError):
            ChipSpec("inner-product", cells=4, data_bits=0)

    def test_result_bits_sizing(self):
        # match: one wire; count: enough bits for the cell count; ip:
        # enough bits for cells * (2^B - 1)^2.
        assert ChipSpec("match", cells=8).result_bits == 1
        assert ChipSpec("count", cells=8).result_bits == 4
        assert ChipSpec("count", cells=12).result_bits == 4
        assert ChipSpec("inner-product", cells=4, data_bits=2).result_bits == 6
        assert ChipSpec("inner-product", cells=6, data_bits=2).result_bits == 6

    def test_numeric_kernel_has_no_comparator_rows(self):
        spec = ChipSpec("inner-product", cells=4)
        assert spec.w_rows == 0
        assert spec.result_row == 0

    def test_names(self):
        assert ChipSpec("match", cells=16, char_bits=4).name == "match_16x4"
        assert ChipSpec("inner-product", cells=6).name == "ip_6x2"
        assert ChipSpec("count", cells=8, chip_name="custom").name == "custom"


class TestElaboration:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_elaborated_ir_validates(self, kernel):
        spec = ChipSpec(kernel, cells=4)
        design = elaborate(spec)
        validate_ir(design, library_for(spec))  # must not raise

    def test_logical_db_shape(self):
        spec = ChipSpec("count", cells=4, char_bits=2)
        db = build_logical_db(elaborate(spec))
        assert sorted(db) == ["comparator", f"counter{spec.result_bits}"]
        assert len(db["comparator"]) == 8  # 4 columns x 2 rows
        assert len(db[f"counter{spec.result_bits}"]) == 4

    def test_net_to_cells_is_a_connectivity_graph(self):
        spec = ChipSpec("match", cells=3, char_bits=1)
        design = elaborate(spec)
        graph = build_net_to_cells(design)
        # The chip input pin P_IN0 lands on exactly one comparator.
        assert len(graph["P_IN0"]) == 1
        # The constant net feeds every row-0 comparator.
        assert len(graph[CONST_ONE]) == 3

    def test_validate_rejects_double_driver(self):
        spec = ChipSpec("match", cells=3, char_bits=1)
        design = elaborate(spec)
        # Make two accumulators drive the same lam net.
        design.cells["a1"]["connections"]["lam_out"] = \
            design.cells["a0"]["connections"]["lam_out"]
        with pytest.raises(CompileError):
            validate_ir(design, library_for(spec))

    def test_validate_rejects_missing_connection(self):
        spec = ChipSpec("match", cells=3, char_bits=1)
        design = elaborate(spec)
        del design.cells["c1_0"]["connections"]["p_in"]
        with pytest.raises(CompileError):
            validate_ir(design, library_for(spec))

    def test_validate_rejects_unknown_type(self):
        spec = ChipSpec("match", cells=3, char_bits=1)
        design = elaborate(spec)
        design.cells["c0_0"]["type"] = "mystery"
        with pytest.raises(CompileError):
            validate_ir(design, library_for(spec))


class TestPlacement:
    def test_grid_and_polarity(self):
        spec = ChipSpec("match", cells=4, char_bits=2)
        pl = place(elaborate(spec), spec)
        assert pl.columns == 4 and pl.w_rows == 2
        # Checkerboard: (i + j) even is the positive twin, fires phi1.
        assert pl.is_positive("c0_0") and pl.phase_index("c0_0") == 0
        assert not pl.is_positive("c1_0") and pl.phase_index("c1_0") == 1
        # The result row sits at index w.
        assert pl.result_row == 2
        assert pl.row(2) == ["a0", "a1", "a2", "a3"]

    def test_all_cells_placed(self):
        spec = ChipSpec("count", cells=5, char_bits=3)
        design = elaborate(spec)
        pl = place(design, spec)
        assert len(pl.loc) == len(design.cells) == 5 * 4

    def test_broken_stream_chain_is_a_placement_error(self):
        spec = ChipSpec("match", cells=3, char_bits=1)
        design = elaborate(spec)
        # Cut the lam chain: the middle accumulator now listens on a
        # net nobody drives rightward.
        design.cells["a1"]["connections"]["lam_in"] = "severed"
        design.cells["a0"]["connections"]["lam_out"] = "dangling"
        with pytest.raises(CompileError):
            place(design, spec)

    def test_broken_d_chain_is_a_placement_error(self):
        spec = ChipSpec("match", cells=3, char_bits=2)
        design = elaborate(spec)
        a, b = (design.cells["c1_0"]["connections"],
                design.cells["c1_1"]["connections"])
        a["d_out"], b["d_in"] = "d_mis.a", "d_mis.b"
        with pytest.raises(CompileError):
            place(design, spec)
