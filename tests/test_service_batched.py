"""The sync farm's batch tier: coalesced plans, verified under adversity.

`MatcherService.submit_many` now plans ONE execution per unique text,
coalesces narrow texts into multi-job batch plans, and serves repeats
from followers or the result cache.  Whatever the routing -- batched,
deduped, cached, sharded wide texts, seeded deaths with whole-batch
retries, per-member deadline sheds, full-pool loss -- every job's answer
must equal the per-job ``submit`` path and the oracle.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Alphabet, match_oracle, parse_pattern
from repro.chip.chip import ChipSpec
from repro.errors import BackpressureError
from repro.service import (
    Fault,
    FaultInjector,
    FaultKind,
    MatcherService,
    Priority,
    ResultCache,
    SchedulerConfig,
    uniform_pool,
)
from repro.workloads import list_workloads, run_workload

AB = Alphabet("ABCD")


class ScriptedInjector(FaultInjector):
    def __init__(self, faults):
        super().__init__()
        self._faults = list(faults)

    def sample(self):
        return self._faults.pop(0) if self._faults else None


def oracle(pattern, text):
    return match_oracle(parse_pattern(pattern, AB), list(text))


class TestCoalescing:
    def test_batched_mode_and_one_execution_for_narrow_texts(self):
        svc = MatcherService(uniform_pool(2, ChipSpec(8, 2), AB))
        texts = ["ABCA", "AACC", "CABC"]
        jids = svc.submit_many("AX", texts)
        results = svc.drain()
        for jid, text in zip(jids, texts):
            assert results[jid].results == oracle("AX", text)
            assert results[jid].mode == "batched"
        assert svc.telemetry.batches == 1
        assert svc.telemetry.batched_jobs == 3

    def test_one_plan_per_unique_text(self):
        """Satellite: duplicates share a plan instead of re-sharding."""
        svc = MatcherService(uniform_pool(2, ChipSpec(8, 2), AB))
        texts = ["ABCA", "ABCA", "AACC", "ABCA"]
        jids = svc.submit_many("AX", texts)
        results = svc.drain()
        modes = [results[j].mode for j in jids]
        assert modes.count("deduped") == 2
        assert svc.telemetry.deduped == 2
        assert svc.telemetry.batched_jobs == 2  # unique texts only
        for jid, text in zip(jids, texts):
            assert results[jid].results == oracle("AX", text)

    def test_wide_texts_keep_their_own_shard_plans(self):
        config = SchedulerConfig(wide_text_threshold=64, min_shard_chars=16)
        svc = MatcherService(uniform_pool(4, ChipSpec(8, 2), AB), config=config)
        wide = "ABCA" * 40
        jids = svc.submit_many("ABXA", [wide, "ABCA"])
        results = svc.drain()
        assert results[jids[0]].mode == "text-sharded"
        assert len(set(results[jids[0]].workers)) > 1
        assert results[jids[0]].results == oracle("ABXA", wide)
        assert results[jids[1]].mode == "batched"

    def test_batch_chunking_respects_max_batch_jobs(self):
        config = SchedulerConfig(max_batch_jobs=2)
        svc = MatcherService(uniform_pool(2, ChipSpec(8, 2), AB), config=config)
        texts = [t * 2 for t in ("ABCA", "AACC", "CABC", "BBCA", "ACCA")]
        jids = svc.submit_many("AX", texts)
        results = svc.drain()
        assert svc.telemetry.batches == 3  # 2 + 2 + 1
        for jid, text in zip(jids, texts):
            assert results[jid].results == oracle("AX", text)

    def test_empty_texts_complete_immediately(self):
        svc = MatcherService(uniform_pool(1, ChipSpec(8, 2), AB))
        jids = svc.submit_many("AB", ["", "ABAB", ""])
        results = svc.drain()
        assert results[jids[0]].results == []
        assert results[jids[2]].results == []
        assert results[jids[1]].results == oracle("AB", "ABAB")

    def test_max_batch_jobs_validated(self):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError):
            SchedulerConfig(max_batch_jobs=0)


class TestAdversity:
    def test_whole_batch_death_retries_and_agrees(self):
        faults = ScriptedInjector(
            [Fault(FaultKind.WORKER_DEATH, at_fraction=0.5)]
        )
        svc = MatcherService(uniform_pool(2, ChipSpec(8, 2), AB), faults=faults)
        texts = ["ABCA", "AACC", "CABC"]
        jids = svc.submit_many("AXC", texts)
        results = svc.drain()
        assert svc.telemetry.deaths == 1 and svc.telemetry.retries >= 1
        for jid, text in zip(jids, texts):
            r = results[jid]
            assert r.results == oracle("AXC", text)
            assert r.attempts >= 1 and not r.via_fallback

    def test_all_workers_dead_degrades_batch_members(self):
        faults = ScriptedInjector(
            [Fault(FaultKind.WORKER_DEATH, at_fraction=0.1)] * 8
        )
        svc = MatcherService(uniform_pool(1, ChipSpec(8, 2), AB), faults=faults)
        texts = ["ABCA", "AACC"]
        jids = svc.submit_many("AX", texts)
        results = svc.drain()
        for jid, text in zip(jids, texts):
            assert results[jid].results == oracle("AX", text)
            assert results[jid].via_fallback

    def test_member_timeout_sheds_before_launch(self):
        svc = MatcherService(uniform_pool(1, ChipSpec(8, 2), AB))
        texts = ["ABCA" * 8, "AACC" * 8]
        jids = svc.submit_many("AX", texts, timeout=1e-6)
        results = svc.drain()
        for jid, text in zip(jids, texts):
            r = results[jid]
            assert r.timed_out and r.via_fallback
            assert r.results == oracle("AX", text)
        assert svc.telemetry.timeouts == len(texts)

    def test_backpressure_rejects_unadmitted_tail(self):
        config = SchedulerConfig(
            queue_capacity=1, degrade_when_saturated=False,
            max_batch_jobs=1, wide_text_threshold=10_000,
        )
        svc = MatcherService(uniform_pool(1, ChipSpec(8, 2), AB), config=config)
        with pytest.raises(BackpressureError):
            svc.submit_many("AX", ["ABCA", "AACC", "CABC"])
        results = svc.drain()
        # The admitted head still ran to a correct completion.
        for r in results.values() if hasattr(results, "values") else results:
            assert r.results == oracle("AX", "ABCA")

    def test_saturation_degrades_overflow_members(self):
        config = SchedulerConfig(
            queue_capacity=1, degrade_when_saturated=True, max_batch_jobs=1,
        )
        svc = MatcherService(uniform_pool(1, ChipSpec(8, 2), AB), config=config)
        texts = ["ABCA", "AACC", "CABC"]
        jids = svc.submit_many("AX", texts)
        results = svc.drain()
        assert any(results[j].via_fallback for j in jids)
        for jid, text in zip(jids, texts):
            assert results[jid].results == oracle("AX", text)


class TestPropertyDifferential:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(0, 10_000),
        st.text(alphabet="ABCDX", min_size=1, max_size=6),
        st.lists(
            st.text(alphabet="ABCD", min_size=0, max_size=50),
            min_size=0,
            max_size=8,
        ),
    )
    def test_batched_equals_per_job_equals_oracle_under_faults(
        self, seed, pattern, texts
    ):
        faults_a = FaultInjector(seed=seed, p_death=0.2)
        faults_b = FaultInjector(seed=seed + 1, p_death=0.2)
        many = MatcherService(
            uniform_pool(2, ChipSpec(8, 2), AB), faults=faults_a,
            cache=ResultCache(),
        )
        solo = MatcherService(
            uniform_pool(2, ChipSpec(8, 2), AB), faults=faults_b
        )
        many_ids = many.submit_many(pattern, texts)
        many_res = many.drain()
        for jid, text in zip(many_ids, texts):
            want = oracle(pattern, text)
            assert many_res[jid].results == want
            sid = solo.submit(pattern, text)
            assert solo.drain()[sid].results == want

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 1_000))
    def test_every_workload_batched_through_farm(self, seed):
        import random

        rng = random.Random(seed)
        for name in list_workloads():
            spec_numeric = name not in ("match", "count")
            if spec_numeric:
                params = [float(rng.randint(-4, 4)) for _ in
                          range(rng.randint(1, 4))]
                streams = [
                    [float(rng.randint(-8, 8)) for _ in
                     range(rng.randint(0, 30))]
                    for _ in range(rng.randint(1, 5))
                ]
            else:
                params = "".join(
                    rng.choice("ABCDX") for _ in range(rng.randint(1, 5))
                )
                streams = [
                    "".join(rng.choice("ABCD") for _ in
                            range(rng.randint(0, 40)))
                    for _ in range(rng.randint(1, 5))
                ]
            svc = MatcherService(
                uniform_pool(2, ChipSpec(8, 2), AB),
                faults=FaultInjector(seed=seed, p_death=0.15),
            )
            jids = svc.submit_many(params, streams, workload=name)
            results = svc.drain()
            for jid, stream in zip(jids, streams):
                want = run_workload(name, params, stream, AB, engine="oracle")
                assert results[jid].results == want, (name, stream)
