"""Lambda-unit geometry primitives."""

import pytest

from repro.errors import LayoutError
from repro.layout.geometry import Point, Rect, bounding_box, merge_connected


class TestRect:
    def test_dimensions(self):
        r = Rect(0, 0, 4, 2)
        assert (r.width, r.height, r.area, r.min_dimension) == (4, 2, 8, 2)

    def test_degenerate_rejected(self):
        with pytest.raises(LayoutError):
            Rect(0, 0, 0, 2)
        with pytest.raises(LayoutError):
            Rect(5, 0, 3, 2)

    def test_translation(self):
        assert Rect(0, 0, 2, 2).translated(3, -1) == Rect(3, -1, 5, 1)

    def test_intersection_is_open(self):
        a, b = Rect(0, 0, 2, 2), Rect(2, 0, 4, 2)
        assert not a.intersects(b)            # touching edges
        assert a.touches_or_intersects(b)
        assert a.intersects(Rect(1, 1, 3, 3))

    def test_separation(self):
        a = Rect(0, 0, 2, 2)
        assert a.separation(Rect(5, 0, 7, 2)) == 3
        assert a.separation(Rect(0, 4, 2, 6)) == 2
        assert a.separation(Rect(1, 1, 3, 3)) == 0
        # diagonal: conservative larger axis gap
        assert a.separation(Rect(4, 5, 6, 7)) == 3

    def test_contains(self):
        assert Rect(0, 0, 10, 10).contains(Rect(2, 2, 4, 4))
        assert not Rect(0, 0, 3, 3).contains(Rect(2, 2, 4, 4))

    def test_union_bbox(self):
        assert Rect(0, 0, 1, 1).union_bbox(Rect(5, 5, 6, 7)) == Rect(0, 0, 6, 7)


class TestHelpers:
    def test_bounding_box(self):
        assert bounding_box([]) is None
        assert bounding_box([Rect(0, 0, 1, 1), Rect(2, 3, 4, 5)]) == Rect(0, 0, 4, 5)

    def test_merge_connected_clusters(self):
        rects = [Rect(0, 0, 2, 2), Rect(2, 0, 4, 2), Rect(10, 10, 12, 12)]
        clusters = merge_connected(rects)
        sizes = sorted(len(c) for c in clusters)
        assert sizes == [1, 2]

    def test_point_translation(self):
        assert Point(1, 2).translated(2, 3) == Point(3, 5)
        assert tuple(Point(4, 5)) == (4, 5)
