"""BIST coverage gate: every modelled circuit fault and every seeded
signoff mutant must be caught at the gate level, with a correct
per-cell diagnosis for the mutants.  Plus unit tests for the BIST
datapath itself (LFSR, MISR, signature analyzer, controller FSM,
characterizer) -- all seeded, all deterministic."""

import pytest

from repro.bist import (
    MISR,
    BISTController,
    BISTState,
    LFSRPatternGenerator,
    MUTATION_DEFECT_NAMES,
    SignatureAnalyzer,
    fault_universe,
    mutation_defect,
)
from repro.circuit.chipnet import MatcherArrayNetlist
from repro.errors import CircuitError
from repro.service.reliability import CellDefect, CellDefectKind

#: The probe geometry the health loops use: small, but it exercises
#: every cell circuit type (both comparator polarity twins, both clock
#: phases, the accumulator column).
M, W = 2, 2
VECTORS = 16
COVERAGE_GATE = 0.95


@pytest.fixture(scope="module")
def universe():
    return fault_universe(M, W)


@pytest.fixture(scope="module")
def controller(universe):
    """One controller for the whole module: the golden signature and the
    fault dictionary are computed once and reused."""
    return BISTController(m=M, w=W, vectors=VECTORS, fault_universe=universe)


class TestLFSR:
    def test_maximal_period_visits_every_nonzero_state(self):
        gen = LFSRPatternGenerator(width=4, seed=0b0001)
        assert gen.period == 15
        seen = {gen.state}
        for _ in range(gen.period - 1):
            seen.add(gen.step())
        assert len(seen) == gen.period
        assert 0 not in seen
        # One more step closes the cycle.
        gen.step()
        assert gen.state == gen.seed

    def test_same_seed_same_sequence(self):
        a = LFSRPatternGenerator(width=6, seed=0b1011)
        b = LFSRPatternGenerator(width=6, seed=0b1011)
        assert [a.step() for _ in range(100)] == [
            b.step() for _ in range(100)
        ]

    def test_reset_replays(self):
        gen = LFSRPatternGenerator(width=6, seed=0b1011)
        first = [gen.step() for _ in range(20)]
        gen.reset()
        assert [gen.step() for _ in range(20)] == first

    def test_zero_seed_rejected(self):
        with pytest.raises(CircuitError):
            LFSRPatternGenerator(width=4, seed=0)
        with pytest.raises(CircuitError):
            LFSRPatternGenerator(width=4, seed=0b10000)  # 0 mod 2^4

    def test_unsupported_width_rejected(self):
        with pytest.raises(CircuitError):
            LFSRPatternGenerator(width=1)
        with pytest.raises(CircuitError):
            LFSRPatternGenerator(width=99)


class TestMISR:
    def _signature(self, words):
        misr = MISR(width=32)
        for w in words:
            misr.observe(w)
        return misr.signature

    def test_single_bit_flip_changes_signature(self):
        words = [0x1234, 0x5678, 0x9ABC, 0xDEF0]
        clean = self._signature(words)
        for i in range(len(words)):
            for bit in (0, 7, 15):
                flipped = list(words)
                flipped[i] ^= 1 << bit
                assert self._signature(flipped) != clean, (i, bit)

    def test_order_sensitive(self):
        assert self._signature([1, 2, 3]) != self._signature([3, 2, 1])

    def test_reset_restores_init(self):
        misr = MISR(width=16, init=0xACE1)
        misr.observe(0xFFFF)
        misr.reset()
        assert misr.signature == 0xACE1
        assert misr.n_observed == 0

    def test_narrow_misr_rejected(self):
        with pytest.raises(CircuitError):
            MISR(width=4)


class TestSignatureAnalyzer:
    def test_two_bits_per_observed_node(self):
        net = MatcherArrayNetlist(M, W)
        analyzer = SignatureAnalyzer()
        nodes = analyzer.response_nodes(net)
        assert len(analyzer.sample(net, nodes)) == 2 * len(nodes)

    def test_every_cell_output_is_a_test_point(self):
        """The d-chain is random-pattern resistant and interior
        accumulator misphases race to the chip edge: every comparator
        d_out and every accumulator output must be tapped directly."""
        net = MatcherArrayNetlist(M, W)
        nodes = set(SignatureAnalyzer().response_nodes(net))
        for i in range(M):
            for j in range(W):
                assert net.comparators[j][i]["d_out"] in nodes
            acc = net.accumulators[i]
            for port in ("d_in", "r_out", "lam_out", "x_out"):
                assert acc[port] in nodes, f"a{i}.{port}"


class TestControllerFSM:
    def test_healthy_chip_passes(self, controller):
        report = controller.run(chip_name="healthy")
        assert report.ok
        assert report.functional_ok
        assert report.timing_ok is True
        assert report.signature == report.golden
        assert report.diagnosis is None

    def test_healthy_states_trace(self, controller):
        states = controller.run().states
        assert states[0] == BISTState.RESET.value
        assert states[1] == BISTState.LOAD_GOLDEN.value
        assert states[-1] == BISTState.PASS.value
        assert states.count(BISTState.SHIFT.value) == VECTORS
        assert states.count(BISTState.CAPTURE.value) == VECTORS
        assert BISTState.COMPARE.value in states
        assert BISTState.CHARACTERIZE.value in states
        assert BISTState.DIAGNOSE.value not in states

    def test_failing_states_trace(self, controller):
        defect = CellDefect(CellDefectKind.STUCK_AT_1, 0, 0, port="d_out")
        states = controller.run(defect=defect).states
        assert BISTState.DIAGNOSE.value in states
        assert states[-1] == BISTState.FAIL.value

    def test_deterministic_reports(self, controller):
        defect = mutation_defect("lvs-shorted-tracks", M, W)
        a = controller.run(defect=defect)
        b = controller.run(defect=defect)
        assert a.signature == b.signature
        assert a.diagnosis == b.diagnosis

    def test_bad_geometry_rejected(self):
        with pytest.raises(CircuitError):
            BISTController(m=0, w=2)
        with pytest.raises(CircuitError):
            BISTController(m=2, w=2, vectors=0)


class TestCharacterizer:
    def test_healthy_chip_meets_phase_budget(self, controller):
        c = controller.run().characterization
        assert c is not None
        assert c.meets_budget and c.settled
        assert c.worst_delay_ns <= c.phase_budget_ns
        assert c.recommended_beat_ns == 250.0
        assert c.max_settle_passes >= 1

    def test_slow_path_fails_timing_not_function(self, controller):
        """An unbuffered chain computes correctly but blows the Elmore
        budget: functional PASS, timing FAIL, overall FAIL -- with a
        binning recommendation instead of a bare verdict."""
        report = controller.run(
            defect=mutation_defect("timing-unbuffered-chain", M, W)
        )
        assert report.functional_ok
        assert report.timing_ok is False
        assert not report.ok
        c = report.characterization
        assert c.worst_delay_ns > c.phase_budget_ns
        assert c.recommended_beat_ns > 250.0
        assert report.diagnosis is not None
        assert report.diagnosis.beat == -1  # timing-only: no divergence


class TestCoverage:
    def test_fault_universe_coverage_meets_gate(self, controller, universe):
        escapes = [
            d.describe() for d in universe if controller.run(defect=d).ok
        ]
        coverage = 1.0 - len(escapes) / len(universe)
        assert coverage >= COVERAGE_GATE, (
            f"BIST coverage {coverage:.3f} below the {COVERAGE_GATE} gate "
            f"on a {M}x{W} array ({len(escapes)}/{len(universe)} faults "
            f"escaped): " + ", ".join(escapes)
        )

    def test_every_signoff_mutant_caught_and_diagnosed(self, controller):
        """Each seeded mutant of repro.signoff.mutations has a gate-level
        equivalent; BIST must catch all of them *and* blame the right
        cell (fault-dictionary diagnosis, not just a failing bit)."""
        misses = []
        for name in MUTATION_DEFECT_NAMES:
            defect = mutation_defect(name, M, W)
            report = controller.run(defect=defect, chip_name=name)
            if report.ok:
                misses.append(f"{name}: escaped ({defect.describe()})")
            elif report.diagnosis is None:
                misses.append(f"{name}: caught but undiagnosed")
            elif report.diagnosis.cell != defect.cell:
                misses.append(
                    f"{name}: blamed {report.diagnosis.cell}, "
                    f"defect is in {defect.cell}"
                )
        assert not misses, "; ".join(misses)

    def test_universe_size_scales_with_geometry(self):
        assert len(fault_universe(2, 2)) == 78
        assert len(fault_universe(3, 2)) == 117
