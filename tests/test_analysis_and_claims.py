"""Cross-level verification helpers, metrics, report tables, and the
paper's headline claims end to end."""

import math

import pytest

from repro import Alphabet
from repro.analysis import Table, comparison_counts, utilization_profile, verify_matcher_stack


class TestVerifyStack:
    def test_all_levels_agree_on_paper_example(self, ab4):
        rep = verify_matcher_stack("AXC", "ABCAACACCAB", ab4)
        assert rep.all_agree
        assert rep.disagreements() == []

    def test_gate_level_included_on_request(self, ab2):
        rep = verify_matcher_stack("AB", "AABB", ab2, include_gate_level=True)
        assert "switch-level netlist" in rep.levels
        assert rep.all_agree

    def test_disagreement_reported(self, ab4):
        rep = verify_matcher_stack("AB", "ABAB", ab4)
        rep.levels["bogus"] = [True] * 4
        assert not rep.all_agree
        assert rep.disagreements() == ["bogus"]


class TestMetrics:
    def test_comparison_counts_fields(self, ab4):
        counts = comparison_counts("AXC", "ABCAACACCAB" * 3, ab4)
        assert counts["naive software"] > 0
        assert math.isnan(counts["KMP"])  # wildcard: inapplicable
        assert counts["systolic (parallel cell firings)"] > 0

    def test_exact_pattern_enables_kmp(self, ab4):
        counts = comparison_counts("ABC", "ABCABC" * 5, ab4)
        assert not math.isnan(counts["KMP"])
        assert not math.isnan(counts["Boyer-Moore"])

    def test_utilization_profile_monotone_toward_half(self, ab4):
        profile = utilization_profile("ABCD", ["ABCD" * n for n in (2, 8, 32)], ab4)
        assert profile[0] < profile[-1] <= 0.5 + 1e-9


class TestTable:
    def test_render_alignment(self):
        t = Table(["name", "value"], title="demo")
        t.row(["x", 1.5])
        t.row(["longer", float("nan")])
        text = t.render()
        assert "demo" in text
        assert "n/a" in text
        lines = text.splitlines()
        assert len({len(l) for l in lines[1:]}) <= 2  # aligned columns

    def test_row_width_enforced(self):
        t = Table(["a"])
        with pytest.raises(ValueError):
            t.row([1, 2])

    def test_float_formats(self):
        t = Table(["v"])
        t.row([12345.678])
        t.row([0.00012])
        text = t.render()
        assert "1.23e+04" in text and "0.00012" in text
