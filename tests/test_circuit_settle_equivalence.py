"""Differential test: the event-driven settle engine vs the reference.

:func:`repro.circuit.simulator.settle` (event-driven, incremental) and
:func:`repro.circuit.simulator.settle_reference` (whole-netlist fixpoint)
must leave a circuit in *identical* state -- every node's value, drive
strength and refresh timestamp -- after every stimulus, including the
awkward regimes: MAYBE transistors from UNKNOWN gates, charge storage
and decay past the retention window, strict-decay errors, VDD-GND
shorts, and released inputs.  Two structurally identical circuits are
built, one driven by each engine, and compared after every operation.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import GND, HIGH, LOW, UNKNOWN, VDD, Circuit
from repro.circuit.gates import (
    inverter,
    nand2,
    pass_transistor,
    xnor_from_rails,
)
from repro.circuit.signals import Strength
from repro.circuit.simulator import settle, settle_reference
from repro.errors import ChargeDecayError, CircuitError


def assert_same_state(c_evt: Circuit, c_ref: Circuit, context: str = "") -> None:
    assert set(c_evt.nodes) == set(c_ref.nodes)
    for name, ref in c_ref.nodes.items():
        evt = c_evt.nodes[name]
        where = f"node {name!r} {context}"
        assert evt.value is ref.value, f"value diverged at {where}"
        assert evt.strength == ref.strength, f"strength diverged at {where}"
        # The refresh clock is only observable on undriven storage: the
        # event engine defers refreshing driven nodes it never visits and
        # backfills when they transition to undriven.
        if ref.strength <= Strength.CHARGE:
            assert evt.last_refresh == ref.last_refresh, (
                f"refresh clock diverged at {where}"
            )


def settle_both(c_evt: Circuit, c_ref: Circuit, context: str = "",
                strict: bool = False):
    """Settle each circuit with its engine; both must agree on outcome.

    Returns the exception type (or None).  On an exception the mid-pass
    state is engine-defined, so callers should stop comparing states.
    """
    err_evt = err_ref = None
    msg_evt = msg_ref = None
    try:
        settle(c_evt, strict_decay=strict)
    except (ChargeDecayError, CircuitError) as e:
        err_evt, msg_evt = type(e), str(e)
    try:
        settle_reference(c_ref, strict_decay=strict)
    except (ChargeDecayError, CircuitError) as e:
        err_ref, msg_ref = type(e), str(e)
    assert err_evt is err_ref, (
        f"engines disagree on failure {context}: {err_evt} vs {err_ref}"
    )
    assert msg_evt == msg_ref, f"error text diverged {context}"
    if err_evt is None:
        assert_same_state(c_evt, c_ref, context)
    return err_evt


def build_random_pair(rng: random.Random):
    """Two structurally identical random small netlists."""
    c_evt = Circuit("dut", retention_ns=500.0)
    c_ref = Circuit("dut", retention_ns=500.0)
    names = [f"n{i}" for i in range(rng.randint(2, 6))]
    terminals = names + [VDD, GND]
    for _ in range(rng.randint(1, 9)):
        gate = rng.choice(names)
        a, b = rng.sample(terminals, 2)
        c_evt.add_enhancement(gate, a, b)
        c_ref.add_enhancement(gate, a, b)
    for _ in range(rng.randint(0, 2)):
        n = rng.choice(names)
        c_evt.add_depletion_load(n)
        c_ref.add_depletion_load(n)
    return c_evt, c_ref, names


def random_stimulus(rng: random.Random, names):
    """One random operation: drive, release, or age the charge."""
    roll = rng.random()
    if roll < 0.55:
        return ("set", rng.choice(names),
                rng.choice([HIGH, LOW, LOW, HIGH, UNKNOWN]))
    if roll < 0.8:
        return ("release", rng.choice(names), None)
    return ("advance", None, rng.choice([100.0, 400.0, 700.0]))


class TestRandomNetlists:
    @settings(max_examples=80, deadline=None)
    @given(st.integers(0, 10_000))
    def test_engines_agree_over_random_runs(self, seed):
        rng = random.Random(seed)
        c_evt, c_ref, names = build_random_pair(rng)
        strict = rng.random() < 0.25
        for op_i in range(rng.randint(1, 12)):
            op, name, arg = random_stimulus(rng, names)
            if op == "set":
                c_evt.set_input(name, arg)
                c_ref.set_input(name, arg)
            elif op == "release":
                c_evt.release_input(name)
                c_ref.release_input(name)
            else:
                c_evt.advance_time(arg)
                c_ref.advance_time(arg)
            err = settle_both(
                c_evt, c_ref, f"(seed {seed}, op {op_i}: {op})", strict=strict
            )
            if err is not None:
                return  # post-exception state is engine-defined


class TestStructuredScenarios:
    def _pair(self, retention_ns=1000.0):
        return (Circuit("dut", retention_ns=retention_ns),
                Circuit("dut", retention_ns=retention_ns))

    def test_inverter_chain_toggles(self):
        c_evt, c_ref = self._pair()
        for c in (c_evt, c_ref):
            inverter(c, "a", "b")
            inverter(c, "b", "d")
            inverter(c, "d", "e")
        for v in (HIGH, LOW, HIGH, HIGH, UNKNOWN, LOW):
            for c in (c_evt, c_ref):
                c.set_input("a", v)
            settle_both(c_evt, c_ref, f"input {v}")

    def test_maybe_gate_from_unknown_input(self):
        c_evt, c_ref = self._pair()
        for c in (c_evt, c_ref):
            nand2(c, "a", "b", "y")
            c.set_input("a", UNKNOWN)
            c.set_input("b", HIGH)
        settle_both(c_evt, c_ref, "MAYBE pulldown")
        assert c_evt.read("y") is UNKNOWN

    def test_xnor_from_rails_short_regime(self):
        c_evt, c_ref = self._pair()
        for c in (c_evt, c_ref):
            inverter(c, "a", "a_bar")
            inverter(c, "b", "b_bar")
            xnor_from_rails(c, "a", "a_bar", "b", "b_bar", "y")
        for va, vb in [(HIGH, HIGH), (HIGH, LOW), (LOW, HIGH),
                       (LOW, LOW), (UNKNOWN, HIGH)]:
            for c in (c_evt, c_ref):
                c.set_input("a", va)
                c.set_input("b", vb)
            settle_both(c_evt, c_ref, f"xnor {va},{vb}")

    def test_charge_storage_release_and_decay(self):
        c_evt, c_ref = self._pair(retention_ns=1000.0)
        for c in (c_evt, c_ref):
            pass_transistor(c, "g", "a", "st")
            c.set_input("a", HIGH)
            c.set_input("g", HIGH)
        settle_both(c_evt, c_ref, "charging")
        for c in (c_evt, c_ref):
            c.set_input("g", LOW)
        settle_both(c_evt, c_ref, "isolated")
        for c in (c_evt, c_ref):
            c.release_input("a")
        settle_both(c_evt, c_ref, "released driver")
        for c in (c_evt, c_ref):
            c.advance_time(600.0)
        settle_both(c_evt, c_ref, "aged within retention")
        for c in (c_evt, c_ref):
            c.advance_time(600.0)
        settle_both(c_evt, c_ref, "aged past retention")
        assert c_evt.read("st") is UNKNOWN

    def test_strict_decay_raises_identically(self):
        c_evt, c_ref = self._pair(retention_ns=1000.0)
        for c in (c_evt, c_ref):
            pass_transistor(c, "g", "a", "st")
            c.set_input("a", HIGH)
            c.set_input("g", HIGH)
        settle_both(c_evt, c_ref, "charge")
        for c in (c_evt, c_ref):
            c.set_input("g", LOW)
        settle_both(c_evt, c_ref, "isolate")
        for c in (c_evt, c_ref):
            c.advance_time(2000.0)
        err = settle_both(c_evt, c_ref, "strict decay", strict=True)
        assert err is ChargeDecayError

    def test_settle_after_decay_error_recovers(self):
        c = Circuit("dut", retention_ns=1000.0)
        pass_transistor(c, "g", "a", "st")
        c.set_input("a", HIGH)
        c.set_input("g", HIGH)
        settle(c)
        c.set_input("g", LOW)
        settle(c)
        c.advance_time(2000.0)
        with pytest.raises(ChargeDecayError):
            settle(c, strict_decay=True)
        # Non-strict retry must still converge and read decayed charge
        # as UNKNOWN (the event engine keeps its worklist across errors).
        settle(c)
        assert c.read("st") is UNKNOWN

    def test_refresh_backfill_when_decay_cascade_cuts_drive(self):
        """Regression (hypothesis seed 1195): a node driven through a
        channel whose *gate* holds decayed charge loses its drive only on
        the second settle iteration -- the decay must first turn the gate
        UNKNOWN, and only then does the channel go MAYBE.  The reference
        engine refreshed the node at `now` during the first iteration, so
        the event engine's driven->undriven backfill must use `now`, not
        the previous settle's time, when the release happens in a
        later pass."""
        c_evt, c_ref = self._pair(retention_ns=500.0)
        for c in (c_evt, c_ref):
            pass_transistor(c, "g", "src", "n")
            c.set_input("src", HIGH)
            c.set_input("g", HIGH)
        settle_both(c_evt, c_ref, "drive n through g")
        for c in (c_evt, c_ref):
            c.release_input("g")  # g now holds charge; n still driven
        settle_both(c_evt, c_ref, "g floats")
        for c in (c_evt, c_ref):
            c.advance_time(400.0)
        settle_both(c_evt, c_ref, "inside retention")
        for c in (c_evt, c_ref):
            c.advance_time(400.0)  # g's charge decays; channel goes MAYBE
        settle_both(c_evt, c_ref, "decay cascade releases n")
        assert c_evt.nodes["n"].strength <= Strength.CHARGE

    def test_short_transition_reresolves_maybe_rail_components(self):
        """Regression (hypothesis seed 328): a component whose only rail
        contact is a MAYBE channel (UNKNOWN gate) must re-resolve when a
        VDD-GND short appears or clears elsewhere -- the rail value its
        pessimism step compares against changes chip-wide, even though
        none of its own gates moved."""
        c_evt, c_ref = self._pair()
        for c in (c_evt, c_ref):
            # n: load-held HIGH, touching VDD only through gate g, which
            # is never driven (UNKNOWN) -- a MAYBE rail edge, mask 0.
            c.add_enhancement("g", VDD, "n")
            c.add_depletion_load("n")
            # m: bridges the rails when both a and b conduct.
            c.add_enhancement("a", VDD, "m")
            c.add_enhancement("b", GND, "m")
            c.set_input("a", HIGH)
        settle_both(c_evt, c_ref, "no short yet")
        assert c_evt.read("n") is HIGH
        for c in (c_evt, c_ref):
            c.set_input("b", HIGH)  # short appears; rail blob goes X
        settle_both(c_evt, c_ref, "short appears")
        assert c_evt.read("n") is UNKNOWN
        for c in (c_evt, c_ref):
            c.set_input("b", LOW)  # short clears; rails split again
        settle_both(c_evt, c_ref, "short clears")
        assert c_evt.read("n") is HIGH
