"""Bus protocol: beats, words, recirculation, interleaving."""

import pytest

from repro import Alphabet, parse_pattern
from repro.errors import StreamError
from repro.streams import (
    Beat,
    BusWord,
    RecirculatingPattern,
    ResultStream,
    WordKind,
    alternating_schedule,
    interleave,
)


@pytest.fixture
def axc_items():
    return RecirculatingPattern(parse_pattern("AXC", Alphabet("ABCD")))


class TestBeat:
    def test_pattern_and_text_beats_alternate(self):
        assert Beat(0).is_pattern_beat
        assert Beat(1).is_text_beat
        assert Beat(2).is_pattern_beat

    def test_next(self):
        assert Beat(3).next() == Beat(4)


class TestRecirculatingPattern:
    def test_lambda_marks_only_last(self, axc_items):
        flags = [it.is_last for it in axc_items.items]
        assert flags == [False, False, True]

    def test_wild_bit_travels_with_pattern(self, axc_items):
        assert [it.is_wild for it in axc_items.items] == [False, True, False]

    def test_recirculation_period(self, axc_items):
        taken = axc_items.take(7)
        assert [t.char for t in taken] == ["A", "A", "C", "A", "A", "C", "A"]
        assert [t.is_last for t in taken] == [False, False, True] * 2 + [False]

    def test_take_negative_rejected(self, axc_items):
        with pytest.raises(StreamError):
            axc_items.take(-1)

    def test_empty_pattern_rejected(self):
        with pytest.raises(StreamError):
            RecirculatingPattern([])

    def test_infinite_iteration(self, axc_items):
        it = iter(axc_items)
        chars = [next(it).char for _ in range(9)]
        assert chars == ["A", "A", "C"] * 3


class TestInterleave:
    def test_alternating_kinds(self, axc_items):
        words = interleave(iter(axc_items), iter("AB"), 6)
        kinds = [w.kind for w in words]
        assert kinds == [
            WordKind.PATTERN, WordKind.TEXT,
            WordKind.PATTERN, WordKind.TEXT,
            WordKind.PATTERN, WordKind.IDLE,
        ]

    def test_exhausted_streams_become_idle(self):
        words = interleave(iter(()), iter(()), 4)
        assert all(w.kind is WordKind.IDLE for w in words)

    def test_negative_beats_rejected(self):
        with pytest.raises(StreamError):
            interleave(iter(()), iter(()), -1)

    def test_idle_word_payload_is_none(self):
        assert BusWord.idle().payload is None


class TestAlternatingSchedule:
    def test_balanced(self):
        kinds = alternating_schedule(2, 2)
        assert kinds == [
            WordKind.PATTERN, WordKind.TEXT, WordKind.PATTERN, WordKind.TEXT
        ]

    def test_unbalanced_drains_longer_stream(self):
        kinds = alternating_schedule(1, 3)
        assert kinds.count(WordKind.PATTERN) == 1
        assert kinds.count(WordKind.TEXT) == 3

    def test_total_length(self):
        assert len(alternating_schedule(5, 9)) == 14


class TestResultStream:
    def test_records(self):
        rs = ResultStream()
        rs.record_raw(None)
        rs.record_result(True)
        rs.record_result(0)
        assert rs.results == [True, False]
        assert len(rs) == 2
        assert len(rs.raw_slots) == 1
