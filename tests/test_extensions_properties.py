"""Property-based differential tests for the Section 3.4 extensions.

Each systolic machine is checked against a *self-contained* brute-force
evaluation written from the mathematical definition (independent of the
repo's own oracle helpers), over hypothesis-generated inputs -- and,
crucially, over arrays **larger** than the pattern, where the extra
cells must behave as transparent wildcard/identity stages.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import parse_pattern
from repro.extensions import (
    systolic_convolution,
    systolic_correlation,
    systolic_fir,
    systolic_inner_products,
    systolic_match_counts,
)

from conftest import AB4, patterns, texts

# Integer-valued floats: exact under IEEE addition/multiplication at
# these magnitudes, so the differential checks can use equality-grade
# approx without tolerance tuning.
ints = st.integers(min_value=-8, max_value=8).map(float)
extra_cells = st.integers(min_value=0, max_value=4)


# -- brute-force definitions (independent of repro.core.reference) ---------

def brute_convolution(kernel, signal):
    """y_i = sum_j h_j * x_{i-j},  i = 0 .. N+L-2."""
    if not signal:
        return []
    n = len(signal) + len(kernel) - 1
    return [
        sum(
            kernel[j] * signal[i - j]
            for j in range(len(kernel))
            if 0 <= i - j < len(signal)
        )
        for i in range(n)
    ]


def brute_correlation(pattern, signal):
    """Squared distance of each complete window; 0.0 before the first."""
    k = len(pattern) - 1
    return [
        sum((signal[i - k + j] - pattern[j]) ** 2 for j in range(len(pattern)))
        if i >= k else 0.0
        for i in range(len(signal))
    ]


def brute_fir(taps, signal):
    """Causal direct-form filter: one output per input sample."""
    return [
        sum(taps[j] * signal[i - j] for j in range(len(taps)) if i - j >= 0)
        for i in range(len(signal))
    ]


def brute_counts(pattern, text):
    """Matching positions per complete window (wildcards always match)."""
    k = len(pattern) - 1
    out = []
    for i in range(len(text)):
        if i < k:
            out.append(0)
            continue
        out.append(
            sum(
                1
                for j, pc in enumerate(pattern)
                if pc.is_wild or pc.char == text[i - k + j]
            )
        )
    return out


class TestConvolutionProperties:
    @settings(max_examples=25, deadline=None)
    @given(kernel=st.lists(ints, min_size=1, max_size=4),
           signal=st.lists(ints, min_size=0, max_size=12))
    def test_matches_brute_force(self, kernel, signal):
        assert systolic_convolution(kernel, signal) == pytest.approx(
            brute_convolution(kernel, signal)
        )

    @settings(max_examples=25, deadline=None)
    @given(kernel=st.lists(ints, min_size=1, max_size=3),
           signal=st.lists(ints, min_size=1, max_size=10),
           extra=extra_cells)
    def test_oversized_array_is_equivalent(self, kernel, signal, extra):
        # Convolution reverses the kernel internally, so the array size is
        # the padded window; extra cells must not change the windows.
        n_cells = 2 * len(kernel) - 1 + extra
        assert systolic_convolution(kernel, signal, n_cells=n_cells) == \
            pytest.approx(brute_convolution(kernel, signal))

    @settings(max_examples=25, deadline=None)
    @given(weights=st.lists(ints, min_size=1, max_size=4),
           signal=st.lists(ints, min_size=0, max_size=12),
           extra=extra_cells)
    def test_inner_products_oversized(self, weights, signal, extra):
        k = len(weights) - 1
        want = [
            sum(weights[j] * signal[i - k + j] for j in range(len(weights)))
            if i >= k else 0.0
            for i in range(len(signal))
        ]
        got = systolic_inner_products(
            weights, signal, n_cells=len(weights) + extra
        )
        assert got == pytest.approx(want)


class TestCorrelationProperties:
    @settings(max_examples=25, deadline=None)
    @given(pattern=st.lists(ints, min_size=1, max_size=4),
           signal=st.lists(ints, min_size=0, max_size=12),
           extra=extra_cells)
    def test_matches_brute_force_any_array_size(self, pattern, signal, extra):
        got = systolic_correlation(pattern, signal,
                                   n_cells=len(pattern) + extra)
        assert got == pytest.approx(brute_correlation(pattern, signal))

    @settings(max_examples=25, deadline=None)
    @given(pattern=st.lists(ints, min_size=1, max_size=4),
           signal=st.lists(ints, min_size=0, max_size=12))
    def test_nonnegative_and_zero_iff_window_equal(self, pattern, signal):
        out = systolic_correlation(pattern, signal)
        k = len(pattern) - 1
        for i, v in enumerate(out):
            assert v >= 0.0
            if i >= k:
                window = signal[i - k:i + 1]
                assert (v == 0.0) == (window == pattern)


class TestFIRProperties:
    @settings(max_examples=25, deadline=None)
    @given(taps=st.lists(ints, min_size=1, max_size=4),
           signal=st.lists(ints, min_size=0, max_size=12))
    def test_matches_brute_force(self, taps, signal):
        assert systolic_fir(taps, signal) == pytest.approx(
            brute_fir(taps, signal)
        )

    @settings(max_examples=25, deadline=None)
    @given(taps=st.lists(ints, min_size=1, max_size=3),
           signal=st.lists(ints, min_size=1, max_size=10),
           extra=extra_cells)
    def test_oversized_array_is_equivalent(self, taps, signal, extra):
        got = systolic_fir(taps, signal, n_cells=len(taps) + extra)
        assert got == pytest.approx(brute_fir(taps, signal))

    @settings(max_examples=25, deadline=None)
    @given(taps=st.lists(ints, min_size=1, max_size=4),
           a=st.lists(ints, min_size=1, max_size=8),
           b=st.lists(ints, min_size=1, max_size=8))
    def test_linearity(self, taps, a, b):
        # FIR is linear: filter(a + b) == filter(a) + filter(b), aligned
        # over the common prefix.
        n = min(len(a), len(b))
        summed = systolic_fir(taps, [a[i] + b[i] for i in range(n)])
        fa, fb = systolic_fir(taps, a[:n]), systolic_fir(taps, b[:n])
        assert summed == pytest.approx([fa[i] + fb[i] for i in range(n)])


class TestCountingProperties:
    @settings(max_examples=25, deadline=None)
    @given(pattern=patterns(max_len=5), text=texts(max_len=20),
           extra=extra_cells)
    def test_matches_brute_force_any_array_size(self, pattern, text, extra):
        parsed = parse_pattern(pattern, AB4)
        got = systolic_match_counts(pattern, text, AB4,
                                    n_cells=len(parsed) + extra)
        assert got == brute_counts(parsed, list(text))

    @settings(max_examples=25, deadline=None)
    @given(pattern=patterns(max_len=5), text=texts(max_len=20))
    def test_counts_bounded_by_pattern_length(self, pattern, text):
        parsed = parse_pattern(pattern, AB4)
        for v in systolic_match_counts(pattern, text, AB4):
            assert 0 <= v <= len(parsed)

    @settings(max_examples=25, deadline=None)
    @given(pattern=patterns(max_len=4, wildcards=False),
           text=texts(max_len=16))
    def test_full_count_iff_exact_match(self, pattern, text):
        # Without wildcards a full count is exactly a string match.
        parsed = parse_pattern(pattern, AB4)
        counts = systolic_match_counts(pattern, text, AB4)
        k = len(parsed) - 1
        for i, c in enumerate(counts):
            if i >= k:
                assert (c == len(parsed)) == \
                    (text[i - k:i + 1] == pattern)
