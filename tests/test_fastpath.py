"""Property: the packed-word fast path is the systolic matcher.

:class:`~repro.core.fastpath.FastMatcher` must agree bit for bit with
the stepwise :class:`~repro.core.matcher.PatternMatcher` (the beat-level
array simulation) and with :func:`~repro.core.reference.match_oracle`
over random alphabets, random wildcard patterns and random texts.  The
fast path is only allowed to be a speedup, never a different matcher.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    WILDCARD,
    Alphabet,
    FastMatcher,
    PatternMatcher,
    match_oracle,
    parse_pattern,
)
from repro.errors import AlphabetError

AB4 = Alphabet("ABCD")

SYMBOL_POOL = "ABCDEFGH"


@st.composite
def alphabet_pattern_text(draw):
    """A random alphabet (2..8 symbols, random encoding width), a random
    wildcard-bearing pattern over it, and a random text."""
    n_sym = draw(st.integers(2, len(SYMBOL_POOL)))
    symbols = SYMBOL_POOL[:n_sym]
    min_bits = max(1, (n_sym - 1).bit_length())
    bits = draw(st.integers(min_bits, min_bits + 2))
    alphabet = Alphabet(symbols, bits=bits)
    # Use the canonical WILDCARD object so patterns stay valid even when
    # the alphabet itself contains the letter X-equivalent symbols.
    pattern = draw(
        st.lists(
            st.one_of(st.sampled_from(symbols), st.just(WILDCARD)),
            min_size=1,
            max_size=12,
        )
    )
    text = draw(st.text(alphabet=symbols, min_size=0, max_size=80))
    return alphabet, pattern, text


class TestEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(alphabet_pattern_text())
    def test_fast_equals_stepwise_equals_oracle(self, case):
        alphabet, pattern, text = case
        fast = FastMatcher(pattern, alphabet).match(text)
        stepwise = PatternMatcher(
            pattern, alphabet, use_fast_path=False
        ).match(text)
        oracle = match_oracle(parse_pattern(pattern, alphabet), list(text))
        assert fast == stepwise == oracle

    @settings(max_examples=60, deadline=None)
    @given(
        st.text(alphabet="ABCDX", min_size=1, max_size=14),
        st.text(alphabet="ABCD", min_size=0, max_size=120),
    )
    def test_symbolic_wildcard_patterns(self, pattern, text):
        fast = FastMatcher(pattern, AB4).match(text)
        stepwise = PatternMatcher(pattern, AB4, use_fast_path=False).match(text)
        assert fast == stepwise
        assert fast == match_oracle(parse_pattern(pattern, AB4), list(text))

    def test_pattern_longer_than_text(self):
        assert FastMatcher("ABCD", AB4).match("AB") == [False, False]

    def test_all_wild_pattern_accepts_everything_after_fill(self):
        out = FastMatcher("XXX", AB4).match("ABCDA")
        assert out == [False, False, True, True, True]

    def test_find_reports_start_positions(self):
        assert FastMatcher("AXC", AB4).match("ABCAACACCAB")[2] is True
        assert 0 in FastMatcher("AXC", AB4).find("ABCAACACCAB")


class TestApiParity:
    def test_rejects_out_of_alphabet_text_like_validating_paths(self):
        fast = FastMatcher("AB", AB4)
        with pytest.raises(AlphabetError) as fast_err:
            fast.match("ABZ")
        with pytest.raises(AlphabetError) as ref_err:
            AB4.validate_text("ABZ")
        assert str(fast_err.value) == str(ref_err.value)

    def test_matcher_routes_match_but_not_report(self):
        m = PatternMatcher("AXC", AB4)
        assert m._fast is not None
        text = "ABCAACACCAB"
        assert m.match(text) == m.report(text).results
        # report() ran the stepwise array: beat counters advanced.
        assert m.array.array.fire_count > 0

    def test_trace_mode_disables_fast_path(self):
        m = PatternMatcher("AXC", AB4, trace=True)
        assert m._fast is None

    def test_pattern_metadata(self):
        fm = FastMatcher("AXC", AB4)
        assert fm.pattern_string == "AXC"
        assert fm.pattern_length == 3
