"""Fleet health over the concurrent runtime's real worker processes:
BIST probes cross the spawn boundary as job directives, quarantine
removes a process from dispatch, heal respawns it on freshly harvested
silicon -- and traffic results stay byte-identical to the oracle
through a full quarantine + heal cycle."""

import asyncio

import pytest

from repro.alphabet import Alphabet
from repro.errors import ProvisionError, ServiceError
from repro.obs import Observability
from repro.runtime import AsyncMatcherService, RuntimeHealth, WorkerPool
from repro.runtime.channels import JobRequest
from repro.service.health import HealthConfig
from repro.service.reliability import CellDefect, CellDefectKind
from repro.wafer import WaferSupply
from repro.workloads.registry import get_workload, list_workloads

AB = Alphabet("ABCD")

#: A defect BIST always catches (validated by test_bist_coverage).
STUCK = CellDefect(CellDefectKind.STUCK_AT_1, 0, 0, port="d_out")

CHAR_TEXT = "ABCDACBDABCACDBA" * 6
NUM_STREAM = [((i * 37) % 19) - 9.0 for i in range(60)]

PARAMS = {
    "match": "ABXC",
    "count": "AXC",
    "correlation": [1.0, -2.0, 0.5],
    "inner-product": [0.5, 1.5, -1.0, 2.0],
    "convolution": [1.0, 2.0, 3.0],
    "fir": [0.25, 0.5, 0.25],
}


def _input_for(name):
    spec = get_workload(name)
    return PARAMS[name], (NUM_STREAM if spec.numeric else CHAR_TEXT)


def run(coro):
    return asyncio.run(coro)


def good_supply(n_wafers=8, seed=5):
    return WaferSupply(n_wafers, rows=3, cols=4, defect_rate=0.0, seed=seed)


@pytest.fixture(scope="module")
def pool():
    p = WorkerPool(2, AB).start()
    yield p
    p.shutdown()


class TestProbe:
    def test_healthy_probe_passes(self, pool):
        health = RuntimeHealth(pool)

        report = run(health.probe(pool.idle_names()[0]))
        assert report is not None
        assert report["ok"] and report["functional_ok"]
        assert report["signature"] == report["golden"]
        # The probe never consumed the worker: it is idle again.
        assert len(pool.idle_names()) == 2

    def test_healthy_sweep_takes_no_action(self, pool):
        health = RuntimeHealth(pool)
        assert run(health.sweep()) == []

    def test_probe_records_obs_span(self, pool):
        obs = Observability()
        health = RuntimeHealth(pool, obs=obs)
        name = pool.idle_names()[0]
        run(health.probe(name))
        (span,) = obs.tracer.find("bist.run")
        assert span.attrs["chip"] == name
        assert span.attrs["ok"] is True


class TestQuarantineHeal:
    def test_full_cycle(self, pool):
        """Seed a latent defect, sweep: the worker is caught at the gate
        level, quarantined out of dispatch, and healed by a respawn on
        freshly harvested silicon that passes its incoming test."""
        obs = Observability()
        health = RuntimeHealth(pool, supply=good_supply(),
                               injector=None, obs=obs)
        victim = pool.idle_names()[0]
        health.seed_defect(victim, STUCK)

        events = run(health.sweep())
        assert [e.action for e in events] == ["quarantine", "heal"]
        assert events[0].worker == events[1].worker == victim
        assert events[0].cell  # the wire-form diagnosis names a cell
        # Healed: back in dispatch, latent directive cleared.
        assert victim in pool.idle_names()
        assert pool.quarantined_names() == []
        assert victim not in health.directives
        (span,) = obs.tracer.find("health.quarantine")
        assert span.attrs["worker"] == victim
        assert obs.registry.value("health.heals", worker=victim) == 1

    def test_quarantined_worker_refuses_targeted_work(self, pool):
        health = RuntimeHealth(pool, supply=good_supply())
        victim = pool.idle_names()[0]
        health.seed_defect(victim, STUCK)
        run(health.sweep(heal=False))
        assert victim in pool.quarantined_names()
        assert victim not in pool.idle_names()

        request = JobRequest(job_id=-99, attempt=0, workload="bist",
                             taps=[], stream=[],
                             bist={"m": 2, "w": 2, "vectors": 4,
                                   "seed": 0b1011, "characterize": False,
                                   "defect": None})
        assert pool.submit_to(victim, request, lambda reply: None) is False
        # A probe of a quarantined worker reports "not idle", not a hang.
        assert run(health.probe(victim)) is None

        run(health.heal(victim))
        assert victim in pool.idle_names()

    def test_heal_requires_quarantine(self, pool):
        with pytest.raises(ServiceError):
            pool.heal(pool.idle_names()[0])

    def test_heal_gated_on_wafer_supply(self, pool):
        """An exhausted lot fails the heal cleanly; the worker stays
        quarantined until silicon is actually available."""
        health = RuntimeHealth(pool, supply=good_supply(n_wafers=0))
        victim = pool.idle_names()[0]
        health.seed_defect(victim, STUCK)
        run(health.sweep(heal=False))
        with pytest.raises(ProvisionError, match="exhausted"):
            run(health.heal(victim))
        assert victim in pool.quarantined_names()

        health.supply = good_supply()
        run(health.heal(victim))
        assert victim in pool.idle_names()


class TestInjectorDrivenSweep:
    def test_sampled_defects_quarantined_and_healed(self, pool,
                                                    health_injector):
        """The injector (conftest's frozen seed) grows a latent defect
        on every idle worker; one sweep catches both across the process
        boundary and heals them in place."""
        health = RuntimeHealth(pool, supply=good_supply(),
                               injector=health_injector)
        events = run(health.sweep())
        actions = [e.action for e in events]
        assert actions.count("quarantine") == 2
        assert actions.count("heal") == 2
        assert not health.directives  # fresh silicon everywhere
        assert len(pool.idle_names()) == 2


class TestResultsUnderChurn:
    def test_oracle_identical_across_quarantine_cycle(self, pool):
        """Every workload, before / while / after a worker is lost to
        quarantine and healed: all results byte-identical to the
        oracle.  Latent defects are directives, so a defective worker
        still computes correctly until caught -- the farm's answers must
        never depend on fleet churn."""
        health = RuntimeHealth(pool, supply=good_supply(),
                               config=HealthConfig(vectors=8))
        victim = pool.idle_names()[0]

        async def go():
            svc = AsyncMatcherService(pool=pool)
            await svc.start()
            out = []
            for name in list_workloads():  # full fleet
                params, stream = _input_for(name)
                jid = await svc.submit(params, stream, workload=name)
                out.append((name, (await svc.result(jid)).results))
            health.seed_defect(victim, STUCK)
            await health.sweep(heal=False)  # one worker short
            for name in list_workloads():
                params, stream = _input_for(name)
                jid = await svc.submit(params, stream, workload=name)
                out.append((name, (await svc.result(jid)).results))
            await health.heal(victim)  # healed fleet
            for name in list_workloads():
                params, stream = _input_for(name)
                jid = await svc.submit(params, stream, workload=name)
                out.append((name, (await svc.result(jid)).results))
            return out

        results = run(go())
        assert len(results) == 3 * len(list_workloads())
        for name, got in results:
            params, stream = _input_for(name)
            oracle = get_workload(name).run(params, stream, AB,
                                            engine="oracle")
            assert got == oracle, name
        assert victim in pool.idle_names()
