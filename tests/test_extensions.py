"""The Section 3.4 extension machines: counting, correlation,
convolution, FIR, and the generic linear-product family."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import count_oracle, parse_pattern
from repro.core.reference import correlation_oracle
from repro.errors import PatternError
from repro.extensions import (
    CorrelationMachine,
    CountingMachine,
    LinearProductMachine,
    systolic_convolution,
    systolic_correlation,
    systolic_fir,
    systolic_inner_products,
    systolic_match_counts,
)
from repro.extensions.fir import fir_oracle
from repro.extensions.linear_products import (
    COUNTING,
    INNER_PRODUCT,
    MATCHING,
    MIN_PLUS,
    SQUARED_DISTANCE,
    linear_product_oracle,
)

from conftest import AB4, patterns, texts

floats = st.floats(min_value=-5, max_value=5, allow_nan=False, width=32)


class TestCounting:
    def test_paper_semantics(self, ab4):
        counts = systolic_match_counts("AXC", "ABCAACACC", ab4)
        assert counts == count_oracle(parse_pattern("AXC", ab4), list("ABCAACACC"))

    def test_wildcards_always_count(self, ab4):
        counts = systolic_match_counts("XX", "AB", ab4)
        assert counts == [0, 2]

    @settings(max_examples=30, deadline=None)
    @given(pattern=patterns(max_len=5), text=texts(max_len=20))
    def test_matches_oracle(self, pattern, text):
        got = systolic_match_counts(pattern, text, AB4)
        assert got == count_oracle(parse_pattern(pattern, AB4), list(text))

    def test_machine_reusable(self, ab4):
        m = CountingMachine("AB", ab4)
        assert m.counts("ABAB") == m.counts("ABAB")

    def test_pattern_must_fit(self, ab4):
        with pytest.raises(PatternError):
            CountingMachine("ABC", ab4, n_cells=2)


class TestCorrelation:
    def test_perfect_match_scores_zero(self):
        m = CorrelationMachine([1.0, 2.0, 3.0])
        out = m.correlate([0.0, 1.0, 2.0, 3.0, 9.0])
        assert out[3] == pytest.approx(0.0)
        assert out[4] > 0

    @settings(max_examples=25, deadline=None)
    @given(pattern=st.lists(floats, min_size=1, max_size=4),
           signal=st.lists(floats, min_size=0, max_size=15))
    def test_matches_oracle(self, pattern, signal):
        got = systolic_correlation(pattern, signal)
        want = correlation_oracle(pattern, signal)
        assert np.allclose(got, want)

    def test_empty_pattern_rejected(self):
        with pytest.raises(PatternError):
            CorrelationMachine([])


class TestConvolutionAndFIR:
    @settings(max_examples=25, deadline=None)
    @given(kernel=st.lists(floats, min_size=1, max_size=4),
           signal=st.lists(floats, min_size=1, max_size=12))
    def test_convolution_matches_numpy(self, kernel, signal):
        got = systolic_convolution(kernel, signal)
        assert np.allclose(got, np.convolve(kernel, signal), atol=1e-6)

    def test_convolution_empty_signal(self):
        assert systolic_convolution([1.0], []) == []

    def test_convolution_empty_kernel_rejected(self):
        with pytest.raises(PatternError):
            systolic_convolution([], [1.0])

    @settings(max_examples=25, deadline=None)
    @given(taps=st.lists(floats, min_size=1, max_size=4),
           signal=st.lists(floats, min_size=0, max_size=12))
    def test_fir_matches_direct_form(self, taps, signal):
        assert np.allclose(systolic_fir(taps, signal), fir_oracle(taps, signal),
                           atol=1e-6)

    def test_fir_impulse_response_is_taps(self):
        taps = [0.5, -1.0, 2.0]
        impulse = [1.0, 0.0, 0.0, 0.0]
        assert np.allclose(systolic_fir(taps, impulse), taps + [0.0])

    def test_inner_products_window_alignment(self):
        out = systolic_inner_products([1.0, 1.0], [1.0, 2.0, 3.0])
        assert out == [0.0, 3.0, 5.0]


class TestLinearProducts:
    @pytest.mark.parametrize(
        "semiring", [MATCHING, COUNTING, SQUARED_DISTANCE, INNER_PRODUCT, MIN_PLUS],
        ids=lambda s: s.name,
    )
    def test_machine_equals_definition(self, semiring):
        pattern = [1, 2, 0]
        stream = [0, 1, 2, 0, 1, 2, 2, 1]
        m = LinearProductMachine(pattern, semiring)
        assert m.run(stream) == linear_product_oracle(pattern, stream, semiring)

    def test_matching_instance_is_string_matching(self):
        m = LinearProductMachine(list("AB"), MATCHING, incomplete=False)
        assert m.run(list("CABAB")) == [False, False, True, False, True]

    def test_min_plus_identity_is_infinity(self):
        assert MIN_PLUS.identity == float("inf")

    def test_pattern_must_fit(self):
        with pytest.raises(PatternError):
            LinearProductMachine([1, 2, 3], INNER_PRODUCT, n_cells=2)

    def test_empty_pattern_rejected(self):
        with pytest.raises(PatternError):
            LinearProductMachine([], INNER_PRODUCT)
