"""LVS: drawn-versus-extracted graph matching."""

import pytest

from repro.circuit.netlist import GND, VDD, Circuit
from repro.layout.cells import cell_bundle
from repro.signoff.extract import extract_cell
from repro.signoff.lvs import compare


def _inverter(name="inv", out="out", inp="a"):
    c = Circuit(name)
    c.add_depletion_load(out, label="pu")
    c.add_enhancement(inp, out, GND, label="pd")
    return c


class TestCompareBasics:
    def test_circuit_matches_itself(self):
        res = compare(_inverter(), _inverter("copy"))
        assert res.ok and not res.diffs

    def test_renamed_internals_still_match(self):
        res = compare(
            _inverter(out="x", inp="y"), _inverter("r", out="p", inp="q")
        )
        assert res.ok
        assert res.net_map["x"] == "p" and res.net_map["y"] == "q"

    def test_device_count_mismatch_is_a_diff(self):
        left = _inverter()
        right = _inverter("r")
        right.add_enhancement("a", "out", GND, label="extra")
        res = compare(left, right)
        assert not res.ok
        assert any("device count mismatch" in d for d in res.diffs)

    def test_kind_mismatch_is_a_diff(self):
        left = _inverter()
        right = Circuit("r")
        right.add_enhancement(VDD, "out", VDD, label="pu")  # not a load
        right.add_enhancement("a", "out", GND, label="pd")
        res = compare(left, right)
        assert not res.ok
        assert any("kind mismatch" in d for d in res.diffs)

    def test_rewired_gate_is_caught(self):
        left = Circuit("l")
        left.add_enhancement("g1", "x", GND, label="t1")
        left.add_enhancement("g2", "y", GND, label="t2")
        right = Circuit("r")
        right.add_enhancement("g1", "y", GND, label="t1")  # crossed over
        right.add_enhancement("g2", "x", GND, label="t2")
        anchors = {"g1": "g1", "g2": "g2", "x": "x", "y": "y"}
        res = compare(left, right, anchors)
        assert not res.ok

    def test_anchor_forces_the_pairing(self):
        # Two interchangeable inverters: anchoring one input fixes both.
        def pair(n1, n2, o1, o2, name):
            c = Circuit(name)
            for inp, out in ((n1, o1), (n2, o2)):
                c.add_depletion_load(out, label=f"pu.{out}")
                c.add_enhancement(inp, out, GND, label=f"pd.{out}")
            return c

        left = pair("a", "b", "ao", "bo", "l")
        right = pair("p", "q", "po", "qo", "r")
        res = compare(left, right, {"a": "q"})
        assert res.ok
        assert res.net_map["a"] == "q" and res.net_map["ao"] == "qo"

    def test_symmetric_classes_resolved_by_individuation(self):
        # With no anchors the two inverters are indistinguishable; the
        # matcher must still find a consistent bijection.
        def pair(name):
            c = Circuit(name)
            for inp, out in (("a", "ao"), ("b", "bo")):
                c.add_depletion_load(out, label=f"pu.{out}")
                c.add_enhancement(inp, out, GND, label=f"pd.{out}")
            return c

        res = compare(pair("l"), pair("r"))
        assert res.ok
        assert res.net_map["ao"] == res.net_map["a"] + "o"

    def test_floating_extracted_net_is_ignored(self):
        left = _inverter()
        right = _inverter("r")
        right.node("sliver")  # isolated net: DRC business, not LVS
        res = compare(left, right)
        assert res.ok


@pytest.mark.parametrize("kind", ["comparator", "accumulator"])
@pytest.mark.parametrize("positive", [True, False])
class TestCellLVS:
    def test_drawn_equals_extracted(self, kind, positive):
        b = cell_bundle(kind, positive)
        ex = extract_cell(b.layout)
        anchors = {
            node: ex.net_of_port[ext]
            for ext, node in b.ports.items()
            if ext in ex.net_of_port
        }
        res = compare(b.circuit, ex.circuit, anchors)
        assert res.ok, res.diffs
        assert res.left_devices == res.right_devices
        # Every drawn net with a device pin has an extracted counterpart.
        assert len(res.net_map) >= len(anchors)
