"""The Section 3.4 multipass scheme for patterns longer than the array."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import match_oracle, multipass_match, parse_pattern
from repro.core.multipass import runs_required
from repro.errors import PatternError

from conftest import AB4, patterns, texts


class TestMultipass:
    def test_pattern_three_times_array_size(self, ab4):
        pattern = parse_pattern("ABCDAB", ab4)
        text = "ABCDABCDABCDAB"
        got = multipass_match(pattern, list(text), n_cells=2)
        assert got == match_oracle(pattern, list(text))

    def test_single_cell_system(self, ab4):
        """Even one cell suffices, one window per pass."""
        pattern = parse_pattern("AXC", ab4)
        text = "ABCAACACCAB"
        got = multipass_match(pattern, list(text), n_cells=1)
        assert got == match_oracle(pattern, list(text))

    def test_array_larger_than_pattern_also_fine(self, ab4):
        pattern = parse_pattern("AB", ab4)
        got = multipass_match(pattern, list("ABAB"), n_cells=6)
        assert got == match_oracle(pattern, list("ABAB"))

    def test_empty_text(self, ab4):
        assert multipass_match(parse_pattern("AB", ab4), [], 2) == []

    def test_text_shorter_than_pattern(self, ab4):
        pattern = parse_pattern("ABCD", ab4)
        assert multipass_match(pattern, list("AB"), 2) == [False, False]

    def test_empty_pattern_rejected(self):
        with pytest.raises(PatternError):
            multipass_match([], list("AB"), 2)

    def test_nonpositive_cells_rejected(self, ab4):
        with pytest.raises(PatternError):
            multipass_match(parse_pattern("AB", ab4), list("AB"), 0)

    @settings(max_examples=40, deadline=None)
    @given(pattern=patterns(max_len=8), text=texts(max_len=24),
           cells=st.integers(1, 5))
    def test_matches_oracle(self, pattern, text, cells):
        pcs = parse_pattern(pattern, AB4)
        got = multipass_match(pcs, list(text), cells)
        assert got == match_oracle(pcs, list(text))


class TestRunAccounting:
    def test_each_run_covers_n_windows(self):
        """'each run will match the complete pattern against n substrings'"""
        # 20 complete windows, 5 cells -> 4 runs
        assert runs_required(pattern_length=5, text_length=24, n_cells=5) == 4

    def test_partial_final_run(self):
        assert runs_required(pattern_length=5, text_length=22, n_cells=5) == 4

    def test_no_windows_no_runs(self):
        assert runs_required(pattern_length=10, text_length=5, n_cells=4) == 0
