"""Wafer-supply edge cases behind the healing loop: zero-yield wafers,
all-good wafers, lot exhaustion (a clean ProvisionError, never a hang),
and the seeded determinism the soak's reproducibility rests on."""

import pytest

from repro.alphabet import Alphabet
from repro.chip.chip import ChipSpec
from repro.errors import ChipError, ProvisionError
from repro.service.health import FleetHealth
from repro.service.pool import PoolWorker, uniform_pool
from repro.wafer import Wafer, WaferSupply, harvest_linear_array
from repro.wafer.yield_model import cells_per_wafer

AB = Alphabet("ABCD")


def dead_wafer(rows=2, cols=4):
    """Every site defective: beyond any bypass budget."""
    wafer = Wafer(rows, cols, defect_rate=0.0)
    for r in range(rows):
        for c in range(cols):
            wafer.mark_defective(r, c)
    return wafer


class TestWaferEdges:
    def test_zero_yield_wafer_is_unharvestable(self):
        with pytest.raises(ChipError, match="bypass budget"):
            harvest_linear_array(dead_wafer())

    def test_zero_yield_wafer_provisions_a_dead_worker_not_a_crash(self):
        """The farm routes around bad silicon: an unharvestable wafer
        becomes a dead (never-dispatched) worker, not an exception."""
        worker = PoolWorker.from_wafer("dud", dead_wafer(), AB)
        assert worker.capacity == 0
        assert not worker.is_live

    def test_all_good_wafer_harvests_every_site(self):
        wafer = Wafer(3, 4, defect_rate=0.0)
        assert wafer.n_functional == wafer.n_sites == 12
        harvest = harvest_linear_array(wafer)
        assert harvest.n_cells == 12
        assert harvest.worst_bypass_run == 0
        worker = PoolWorker.from_wafer("fresh", wafer, AB)
        assert worker.is_live
        assert worker.capacity == worker.nominal_capacity == 12


class TestWaferSupply:
    def test_draw_consumes_the_lot(self):
        supply = WaferSupply(3, rows=2, cols=2, seed=1)
        wafers = [supply.draw() for _ in range(3)]
        assert all(w.n_sites == 4 for w in wafers)
        assert supply.remaining == 0
        assert supply.drawn == 3

    def test_exhaustion_raises_cleanly_not_hangs(self):
        supply = WaferSupply(1, rows=2, cols=2, seed=1)
        supply.draw()
        for _ in range(3):  # stays exhausted, never wraps or blocks
            with pytest.raises(ProvisionError, match="exhausted"):
                supply.draw()
        assert supply.drawn == 1

    def test_empty_lot_raises_immediately(self):
        with pytest.raises(ProvisionError, match="0-wafer lot"):
            WaferSupply(0, rows=2, cols=2).draw()

    def test_same_seed_same_lot(self):
        def defect_maps(seed):
            supply = WaferSupply(4, rows=3, cols=4, defect_rate=0.4,
                                 seed=seed)
            return [
                [site.functional for site in supply.draw()]
                for _ in range(4)
            ]

        assert defect_maps(11) == defect_maps(11)
        assert defect_maps(11) != defect_maps(12)

    def test_expected_cells_matches_yield_model(self):
        supply = WaferSupply(1, rows=3, cols=4, defect_rate=0.25)
        assert supply.expected_cells_per_wafer() == pytest.approx(
            cells_per_wafer(3, 4, 0.25)
        )

    def test_validation(self):
        with pytest.raises(ChipError):
            WaferSupply(-1, rows=2, cols=2)
        with pytest.raises(ChipError):
            WaferSupply(1, rows=0, cols=2)
        with pytest.raises(ChipError):
            WaferSupply(1, rows=2, cols=2, defect_rate=1.0)


class TestProvisioningGates:
    def test_heal_one_exhausts_supply_with_clean_error(self):
        pool = uniform_pool(2, ChipSpec(8, AB.bits, 250.0), AB)
        supply = WaferSupply(2, rows=2, cols=2, defect_rate=0.0, seed=3)
        health = FleetHealth(pool, supply=supply)
        health.heal_one()
        health.heal_one()
        with pytest.raises(ProvisionError, match="exhausted"):
            health.heal_one()

    def test_heal_to_capacity_propagates_exhaustion(self):
        pool = uniform_pool(2, ChipSpec(8, AB.bits, 250.0), AB)
        pool.workers[0].quarantine()
        pool.workers[1].quarantine()
        health = FleetHealth(
            pool, supply=WaferSupply(1, rows=2, cols=2, seed=3)
        )
        with pytest.raises(ProvisionError):
            health.heal_to_capacity(2)
        assert pool.n_live == 1  # the one wafer that existed was used
