"""The comparator and accumulator cell algorithms in isolation."""

from repro.core.cells import AccumulatorCell, ComparatorCell, MatcherCellKernel, ResultToken
from repro.core.array import TextToken
from repro.streams import PatternStreamItem


class TestComparatorCell:
    def test_equality(self):
        c = ComparatorCell()
        assert c.compare("A", "A")
        assert not c.compare("A", "B")


class TestAccumulatorCell:
    def test_powers_on_true(self):
        assert AccumulatorCell().t is True

    def test_accumulates_conjunction(self):
        a = AccumulatorCell()
        assert a.absorb(True, False, False) is None
        assert a.t is True
        a.absorb(False, False, False)
        assert a.t is False

    def test_wildcard_overrides_mismatch(self):
        a = AccumulatorCell()
        a.absorb(False, True, False)  # d=0 but x=1 -> ignored
        assert a.t is True

    def test_lambda_emits_and_reinitialises(self):
        a = AccumulatorCell()
        a.absorb(True, False, False)
        emitted = a.absorb(True, False, True)
        assert isinstance(emitted, ResultToken)
        assert emitted.value is True
        assert a.t is True  # t <- TRUE

    def test_lambda_emission_includes_current_beat(self):
        """The end-of-pattern comparison participates in the emitted t."""
        a = AccumulatorCell()
        a.absorb(True, False, False)
        emitted = a.absorb(False, False, True)  # mismatch on the last char
        assert emitted.value is False

    def test_failure_does_not_leak_across_patterns(self):
        a = AccumulatorCell()
        a.absorb(False, False, True)   # emits False, resets
        emitted = a.absorb(True, False, True)
        assert emitted.value is True

    def test_reset(self):
        a = AccumulatorCell()
        a.absorb(False, False, False)
        a.reset()
        assert a.t is True


class TestMatcherCellKernel:
    @staticmethod
    def fire(kernel, p_char, s_char, wild=False, last=False, r=None):
        return kernel.fire(
            {
                "p": PatternStreamItem(p_char, wild, last),
                "s": TextToken(s_char, 0),
                "r": r,
            }
        )

    def test_passes_streams_through(self):
        k = MatcherCellKernel()
        out = self.fire(k, "A", "B")
        assert out["p"].char == "A"
        assert out["s"].char == "B"

    def test_no_result_until_lambda(self):
        k = MatcherCellKernel()
        out = self.fire(k, "A", "A")
        assert "r" not in out

    def test_result_on_lambda(self):
        k = MatcherCellKernel()
        self.fire(k, "A", "A")
        out = self.fire(k, "B", "B", last=True)
        assert out["r"].value is True

    def test_state_snapshot_exposes_t_and_d(self):
        k = MatcherCellKernel()
        self.fire(k, "A", "B")
        snap = k.state_snapshot()
        assert snap["d"] is False
        assert snap["t"] is False

    def test_reset(self):
        k = MatcherCellKernel()
        self.fire(k, "A", "B")
        k.reset()
        assert k.accumulator.t is True
        assert k.last_d is None


class TestResultToken:
    def test_str_forms(self):
        assert str(ResultToken(True)) == "1"
        assert str(ResultToken(False)) == "0"
        assert str(ResultToken(7)) == "7"
