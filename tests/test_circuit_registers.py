"""Figure 3-5 shift registers and the two-phase clock discipline."""

import pytest

from repro.circuit import Circuit, TwoPhaseClock
from repro.circuit.shift_register import DynamicShiftRegister, StaticShiftRegister
from repro.circuit.signals import HIGH, LOW, UNKNOWN
from repro.errors import CircuitError, ClockError


class TestTwoPhaseClock:
    def test_phases_never_overlap(self):
        c = Circuit()
        clk = TwoPhaseClock(c)
        clk.beat_pair()
        # after any sequence both phases are low
        assert c.inputs["phi1"] is LOW and c.inputs["phi2"] is LOW

    def test_forcing_overlap_raises(self):
        c = Circuit()
        clk = TwoPhaseClock(c)
        c.set_input("phi2", HIGH)
        with pytest.raises(ClockError):
            clk.tick_phi1()

    def test_beat_time(self):
        clk = TwoPhaseClock(Circuit(), phase_high_ns=100, gap_ns=25)
        assert clk.beat_time_ns == 125

    def test_bad_phase_times_rejected(self):
        with pytest.raises(ClockError):
            TwoPhaseClock(Circuit(), phase_high_ns=0)

    def test_run_beats_advances_time(self):
        c = Circuit()
        clk = TwoPhaseClock(c)
        clk.run_beats(4)
        assert clk.ticks == 4
        assert c.time_ns == pytest.approx(4 * clk.beat_time_ns)


class TestDynamicShiftRegister:
    def test_impulse_transits_in_n_shifts(self):
        """Figure 3-5: a marker bit crosses one stage per clock phase."""
        sr = DynamicShiftRegister(4)
        outs = [sr.shift(True)]
        for _ in range(9):
            outs.append(sr.shift(False))
        # entered on shift 0, emerges on shift 3 (latched by stage 3's
        # phase) and is replaced two phases later by the following zeros
        assert outs[3] is HIGH and outs[4] is HIGH
        assert outs[5] is LOW and all(v is LOW for v in outs[5:])

    def test_stream_emerges_in_order(self):
        sr = DynamicShiftRegister(4)
        bits = [True, False, True, True, False]
        seen = []
        for b in bits:
            seen.append(sr.shift(b))
            seen.append(sr.shift(None))
        # each input bit appears at output indices 4i+3 and 4i+4... the
        # register holds each emerged bit for two phases: sample the
        # first appearance of each input bit directly.
        got = [seen[3 + 2 * i] for i in range(len(bits) - 1)]
        expect = [HIGH if b else LOW for b in bits[: len(got)]]
        assert got == expect

    def test_alternate_stages_hold_independent_bits(self):
        sr = DynamicShiftRegister(4)
        sr.shift(True)
        sr.shift(None)
        sr.shift(False)
        sr.shift(None)
        stored = sr.read_storage()
        known = [v for v in stored if v is not UNKNOWN]
        assert len(known) >= 2

    def test_decay_on_stopped_clock(self):
        """Section 3.3.3: dynamic registers lose data in about 1 ms."""
        sr = DynamicShiftRegister(2, retention_ns=1e6)
        sr.shift(True)
        sr.shift(None)
        assert UNKNOWN not in sr.read_storage()
        sr.hold(2e6)
        assert all(v is UNKNOWN for v in sr.read_storage())

    def test_survives_short_pause(self):
        sr = DynamicShiftRegister(2, retention_ns=1e6)
        sr.shift(True)
        sr.shift(None)
        sr.hold(0.5e6)  # within retention
        assert UNKNOWN not in sr.read_storage()

    def test_device_and_control_budget(self):
        sr = DynamicShiftRegister(3)
        assert sr.devices_per_stage == 3
        assert sr.control_signals == 2

    def test_zero_stages_rejected(self):
        with pytest.raises(CircuitError):
            DynamicShiftRegister(0)


class TestStaticShiftRegister:
    def test_shifts_like_dynamic(self):
        sr = StaticShiftRegister(2)
        sr.shift(True)
        out = sr.shift(None)
        assert out in (HIGH, LOW, UNKNOWN)
        assert sr.read_storage()[0] is HIGH

    def test_holds_data_indefinitely(self):
        """The regeneration circuitry refreshes every cycle: no decay."""
        sr = StaticShiftRegister(2, retention_ns=1e6)
        sr.shift(True)
        sr.shift(None)
        before = sr.read_storage()
        sr.hold(5e6)  # five retention windows
        assert sr.read_storage() == before

    def test_shift_deasserted_freezes_data(self):
        sr = StaticShiftRegister(2)
        sr.shift(True)
        sr.shift(False)
        frozen = sr.read_storage()
        sr.set_shifting(False)
        sr.clock.tick_phi1()
        sr.clock.tick_phi2()
        assert sr.read_storage() == frozen

    def test_costs_more_devices_and_controls(self):
        """The Section 3.3.3 trade: static = more devices + a third
        control signal, in exchange for indefinite retention."""
        dyn = DynamicShiftRegister(2)
        st = StaticShiftRegister(2)
        assert st.devices_per_stage > dyn.devices_per_stage
        assert st.control_signals == dyn.control_signals + 1
