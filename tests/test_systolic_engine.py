"""The generic beat-synchronous array engine."""

import pytest

from repro.errors import SimulationError
from repro.systolic import (
    BUBBLE,
    CellKernel,
    ChannelDirection,
    ChannelSpec,
    LinearArray,
    PassThroughKernel,
    TraceRecorder,
    is_bubble,
)
from repro.systolic.cell import FunctionKernel, all_valid


RIGHT = ChannelSpec("a", ChannelDirection.RIGHT)
LEFT = ChannelSpec("b", ChannelDirection.LEFT)


def passthrough_array(n, recorder=None, collect_stats=False):
    return LinearArray(
        n,
        [RIGHT, LEFT],
        lambda i: PassThroughKernel(),
        ("a",),
        recorder=recorder,
        collect_stats=collect_stats,
    )


class TestShifting:
    def test_rightward_transit_takes_n_beats(self):
        arr = passthrough_array(3)
        outs = [arr.step({"a": "x"})]
        for _ in range(5):
            outs.append(arr.step({}))
        values = [o["a"] for o in outs]
        assert values[:3] == [BUBBLE] * 3
        assert values[3] == "x"

    def test_leftward_transit(self):
        arr = passthrough_array(4)
        outs = [arr.step({"b": "y"})]
        for _ in range(5):
            outs.append(arr.step({}))
        assert [o["b"] for o in outs][4] == "y"

    def test_stream_order_preserved(self):
        arr = passthrough_array(2)
        seen = []
        for i in range(8):
            out = arr.step({"a": i})
            if not is_bubble(out["a"]):
                seen.append(out["a"])
        assert seen == [0, 1, 2, 3, 4, 5]

    def test_opposing_streams_do_not_interfere(self):
        arr = passthrough_array(3)
        a_out, b_out = [], []
        for i in range(12):
            out = arr.step({"a": f"a{i}", "b": f"b{i}"})
            if not is_bubble(out["a"]):
                a_out.append(out["a"])
            if not is_bubble(out["b"]):
                b_out.append(out["b"])
        assert a_out == [f"a{i}" for i in range(9)]
        assert b_out == [f"b{i}" for i in range(9)]


class TestFiring:
    def test_kernel_fires_only_when_activity_channels_valid(self):
        fires = []

        class Spy(CellKernel):
            def fire(self, inputs):
                fires.append(dict(inputs))
                return {}

        arr = LinearArray(1, [RIGHT, LEFT], lambda i: Spy(), ("a", "b"))
        arr.step({"a": 1})           # b missing -> idle
        arr.step({"b": 2})           # a missing -> idle
        arr.step({"a": 3, "b": 4})   # both -> fires
        assert len(fires) == 1
        assert fires[0] == {"a": 3, "b": 4}

    def test_kernel_output_replaces_slot(self):
        double = FunctionKernel(lambda ins: {"a": ins["a"] * 2})
        arr = LinearArray(2, [RIGHT, LEFT], lambda i: double, ("a",))
        arr.step({"a": 3})
        out = arr.step({})
        out = arr.step({})
        assert out["a"] == 12  # doubled in each of the two cells

    def test_kernel_cannot_emit_bubble(self):
        bad = FunctionKernel(lambda ins: {"a": BUBBLE})
        arr = LinearArray(1, [RIGHT], lambda i: bad, ("a",))
        with pytest.raises(SimulationError):
            arr.step({"a": 1})

    def test_kernel_cannot_emit_unknown_channel(self):
        bad = FunctionKernel(lambda ins: {"zz": 1})
        arr = LinearArray(1, [RIGHT], lambda i: bad, ("a",))
        with pytest.raises(SimulationError):
            arr.step({"a": 1})


class TestConstruction:
    def test_zero_cells_rejected(self):
        with pytest.raises(SimulationError):
            passthrough_array(0)

    def test_duplicate_channels_rejected(self):
        with pytest.raises(SimulationError):
            LinearArray(1, [RIGHT, RIGHT], lambda i: PassThroughKernel(), ("a",))

    def test_unknown_activity_channel_rejected(self):
        with pytest.raises(SimulationError):
            LinearArray(1, [RIGHT], lambda i: PassThroughKernel(), ("zz",))


class TestStats:
    def test_utilization_counts_fires(self):
        arr = passthrough_array(2)
        for i in range(10):
            arr.step({"a": i})
        assert arr.beat == 10
        assert 0 < arr.utilization() <= 1.0

    def test_reset_restores_power_on_state(self):
        arr = passthrough_array(2)
        arr.step({"a": 1})
        arr.reset()
        assert arr.beat == 0
        assert arr.fire_count == 0
        assert all(is_bubble(v) for v in arr.slots["a"])

    def test_occupancy_between_zero_and_one(self):
        arr = passthrough_array(4, collect_stats=True)
        for i in range(8):
            arr.step({"a": i, "b": i})
        assert 0 < arr.occupancy() <= 1.0

    def test_occupancy_requires_collect_stats(self):
        arr = passthrough_array(4)
        arr.step({"a": 1})
        with pytest.raises(SimulationError):
            arr.occupancy()

    def test_batched_run_matches_stepwise(self):
        schedule = [{"a": i, "b": i} if i % 2 else {} for i in range(12)]
        stepwise = passthrough_array(5, collect_stats=True)
        batched = passthrough_array(5, collect_stats=True)
        step_outs = [stepwise.step(beat) for beat in schedule]
        run_outs = batched.run(schedule)
        assert run_outs == step_outs
        assert batched.snapshot() == stepwise.snapshot()
        assert batched.beat == stepwise.beat
        assert batched.fire_count == stepwise.fire_count
        assert batched.slot_occupancy == stepwise.slot_occupancy


class TestHelpers:
    def test_all_valid(self):
        assert all_valid({"x": 1, "y": 2}, ("x", "y"))
        assert not all_valid({"x": 1, "y": BUBBLE}, ("x", "y"))

    def test_bubble_is_falsy_singleton(self):
        assert not BUBBLE
        assert repr(BUBBLE) == "BUBBLE"
        from repro.systolic.cell import _Bubble

        assert _Bubble() is BUBBLE
