"""Per-job deadline (``timeout=``) tests for the synchronous farm.

The SLO contract: a launch whose projected finish (worker service time,
stuck-beat penalties, bus queueing, or a mid-stream death) would land
past the job's deadline is never committed to a worker -- the shard is
served degraded from the host oracle instead, flagged ``timed_out``,
and the drain can never be wedged past the deadline by a slow worker."""

import pytest

from repro.alphabet import Alphabet
from repro.chip.chip import ChipSpec
from repro.errors import ServiceError
from repro.host.bus import HostSpec
from repro.service.pool import uniform_pool
from repro.service.reliability import FaultInjector
from repro.service.scheduler import SharedBus
from repro.service.service import MatcherService
from repro.workloads.registry import get_workload

AB = Alphabet("ABCD")
TEXT = "ABCAACACCAB" * 40


def make_service(**kw):
    return MatcherService(uniform_pool(4, ChipSpec(8, 2), AB), **kw)


class TestBusEta:
    def test_eta_is_a_pure_peek(self):
        bus = SharedBus()
        eta = bus.eta(1000, 5.0)
        assert bus.free_at == 0.0 and bus.chars_moved == 0
        assert eta == bus.reserve(1000, 5.0)

    def test_eta_accounts_for_queue(self):
        bus = SharedBus()
        free_before = bus.reserve(1000, 0.0)
        # A queued bus pushes the projected completion past now+duration.
        assert bus.eta(10, 0.0) == free_before + 10 * bus.per_char_beats
        assert bus.eta(0, free_before + 3.0) == free_before + 3.0

    def test_eta_rejects_negative(self):
        with pytest.raises(ServiceError):
            SharedBus().eta(-1, 0.0)


class TestSubmitTimeout:
    def test_tight_deadline_serves_degraded_and_correct(self):
        svc = make_service()
        svc.submit("AXC", TEXT, timeout=5.0)  # a handful of beats: hopeless
        (res,) = svc.drain()
        assert res.timed_out and res.via_fallback and res.mode == "software"
        assert res.finished_beat > 0
        assert svc.telemetry.timeouts >= 1
        expect = get_workload("match").run("AXC", TEXT, AB, engine="oracle")
        assert res.results == expect

    def test_generous_deadline_runs_on_workers(self):
        svc = make_service()
        svc.submit("AXC", TEXT, timeout=1e12)
        (res,) = svc.drain()
        assert not res.timed_out and not res.via_fallback
        assert res.workers  # a real worker served it
        assert svc.telemetry.timeouts == 0

    def test_no_timeout_is_the_default(self):
        svc = make_service()
        svc.submit("AXC", TEXT)
        (res,) = svc.drain()
        assert not res.timed_out
        assert svc.telemetry.timeouts == 0

    def test_timeout_must_be_positive(self):
        svc = make_service()
        with pytest.raises(ServiceError):
            svc.submit("AXC", TEXT, timeout=0)
        with pytest.raises(ServiceError):
            svc.submit("AXC", TEXT, timeout=-3.0)

    def test_submit_many_threads_timeout_through(self):
        svc = make_service()
        svc.submit_many("AXC", [TEXT, TEXT], timeout=5.0)
        results = svc.drain()
        assert len(results) == 2
        assert all(r.timed_out for r in results)

    def test_kernel_workload_timeout_finalizes_correctly(self):
        stream = [float((i * 13) % 7) for i in range(300)]
        svc = make_service()
        svc.submit([0.5, 1.0, 0.5], stream, workload="fir", timeout=5.0)
        (res,) = svc.drain()
        assert res.timed_out and res.via_fallback
        expect = get_workload("fir").run([0.5, 1.0, 0.5], stream, None,
                                         engine="oracle")
        assert res.results == expect

    def test_stuck_worker_cannot_wedge_the_deadline(self):
        """Stuck-beat faults inflate the projected finish; a job whose
        SLO they would blow is rerouted before launch."""
        svc = make_service(
            faults=FaultInjector(seed=5, p_stuck=1.0,
                                 stuck_beats=(10_000, 10_000)),
        )
        svc.submit("AXC", TEXT, timeout=6_000.0)
        (res,) = svc.drain()
        assert res.timed_out and res.via_fallback
        assert res.results == get_workload("match").run(
            "AXC", TEXT, AB, engine="oracle"
        )

    def test_mixed_deadlines_drain_cleanly(self):
        """Timed-out and normal jobs interleave without stalling the
        scheduler (regression: inline completions used to trip the
        stall detector)."""
        svc = make_service()
        for k in range(6):
            svc.submit("AXC", TEXT, timeout=5.0 if k % 2 else None)
        results = svc.drain()
        assert len(results) == 6
        expect = get_workload("match").run("AXC", TEXT, AB, engine="oracle")
        for r in results:
            assert r.results == expect
        assert sum(r.timed_out for r in results) == 3
        assert svc.telemetry.completed == 6
