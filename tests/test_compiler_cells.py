"""Switch-level unit tests for the compiler's result cells.

The counter and multiply-accumulate cells follow the accumulator's
clocking idiom: input latches on the cell's own phase, the t master
updated the same phase, the t slave refreshed on the other phase.  Each
test drives one isolated cell through a hand-checked sequence on both
polarity twins and compares every emitted result word against the
arithmetic model.

The first beat is always a lambda clear with its output excluded: out of
power-up the t store holds garbage (UNKNOWN nodes resolve high through
the loads), and the first lambda fire is what clears it -- the same
invariant the array relies on, where every sampled window is preceded by
a lambda reset.
"""

import pytest

from repro.circuit.cells.counter import build_counter, counter_devices
from repro.circuit.cells.mac import build_mac, mac_devices
from repro.circuit.netlist import Circuit
from repro.circuit.signals import HIGH, LOW, UNKNOWN
from repro.errors import CircuitError


def _pulse(c, phase):
    c.set_input(phase, HIGH)
    c.settle()
    c.advance_time(100.0)
    c.set_input(phase, LOW)
    c.settle()
    c.advance_time(25.0)


class _Harness:
    """Drive one cell's ports with polarity-corrected logic levels."""

    def __init__(self, circuit, ports, positive, result_bits):
        self.c = circuit
        self.ports = ports
        self.inv_in = not positive   # negative twin takes complemented inputs
        self.inv_out = positive      # positive twin emits complemented outputs
        self.result_bits = result_bits
        circuit.set_input("clkA", LOW)
        circuit.set_input("clkB", LOW)

    def drive(self, name, bit):
        v = bool(bit) ^ self.inv_in
        self.c.set_input(self.ports[name], HIGH if v else LOW)

    def beat(self):
        _pulse(self.c, "clkA")   # the cell fires
        word = self.read_result()
        _pulse(self.c, "clkB")   # slave refresh
        return word

    def read_result(self):
        val = 0
        for i in range(self.result_bits):
            v = self.c.read(self.ports[f"r_out{i}"])
            if v is UNKNOWN:
                return None
            val |= int((v is HIGH) ^ self.inv_out) << i
        return val


@pytest.mark.parametrize("positive", [True, False])
def test_counter_counts_emits_and_passes_through(positive):
    bits = 4
    c = Circuit("cnt")
    ports = build_counter(c, "u.", "clkA", "clkB", bits, positive=positive)
    h = _Harness(c, ports, positive, bits)

    # (lam, x, d, r_in): increment on x OR d; on lambda emit t and clear;
    # otherwise latch r_in through (the systolic result stream).
    seq = [
        (1, 0, 0, 0),   # power-up clear (output unscored)
        (0, 0, 1, 0),   # t=1
        (0, 1, 0, 0),   # t=2 (wildcard counts)
        (0, 0, 0, 0),   # t=2
        (1, 0, 1, 0),   # emit 3, clear
        (0, 0, 1, 5),   # t=1, r stream passes 5 through
        (1, 0, 0, 0),   # emit 1
    ]
    model_t, outs, expected = 0, [], []
    for n, (lam, x, d, rv) in enumerate(seq):
        h.drive("lam_in", lam)
        h.drive("x_in", x)
        h.drive("d_in", d)
        for i in range(bits):
            h.drive(f"r_in{i}", (rv >> i) & 1)
        word = h.beat()
        t2 = (model_t + (1 if (x or d) else 0)) % (1 << bits)
        if lam:
            out, model_t = t2, 0
        else:
            out, model_t = rv, t2
        if n > 0:
            outs.append(word)
            expected.append(out)
    assert outs == expected


@pytest.mark.parametrize("positive", [True, False])
def test_mac_multiplies_accumulates_and_passes_through(positive):
    B, R = 2, 6
    c = Circuit("mac")
    ports = build_mac(c, "u.", "clkA", "clkB", B, R, positive=positive)
    h = _Harness(c, ports, positive, R)

    # (lam, p, s, r_in): t += p * s; emit and clear on lambda.
    seq = [
        (1, 0, 0, 0),    # power-up clear (output unscored)
        (0, 3, 2, 0),    # t=6
        (0, 1, 3, 0),    # t=9
        (1, 2, 2, 0),    # emit 13, clear
        (0, 0, 3, 42),   # r stream passes 42 through
        (0, 3, 3, 0),    # t=9
        (1, 1, 1, 0),    # emit 10
    ]
    model_t, outs, expected = 0, [], []
    for n, (lam, pv, sv, rv) in enumerate(seq):
        h.drive("lam_in", lam)
        for b in range(B):
            h.drive(f"p_in{b}", (pv >> b) & 1)
            h.drive(f"s_in{b}", (sv >> b) & 1)
        for i in range(R):
            h.drive(f"r_in{i}", (rv >> i) & 1)
        word = h.beat()
        t2 = (model_t + pv * sv) % (1 << R)
        if lam:
            out, model_t = t2, 0
        else:
            out, model_t = rv, t2
        if n > 0:
            outs.append(word)
            expected.append(out)
    assert outs == expected


def test_device_count_formulas_match_built_circuits():
    for bits in (2, 4):
        for positive in (True, False):
            c = Circuit("cnt")
            build_counter(c, "u.", "clkA", "clkB", bits, positive=positive)
            assert c.n_transistors == counter_devices(bits, positive)
    c = Circuit("mac")
    build_mac(c, "u.", "clkA", "clkB", 2, 6, positive=True)
    assert c.n_transistors == mac_devices(2, 6, True)


def test_mac_requires_room_for_the_product():
    c = Circuit("mac")
    with pytest.raises(CircuitError):
        build_mac(c, "u.", "clkA", "clkB", 3, 4, positive=True)
