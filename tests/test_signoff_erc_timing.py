"""Electrical-rule lint and Elmore timing closure."""

import pytest

from repro.circuit.netlist import GND, VDD, Circuit
from repro.layout.cells import cell_bundle
from repro.signoff.erc import (
    ALL_RULES,
    ClockDisciplineRule,
    DynamicRefreshRule,
    ERCContext,
    FloatingGateRule,
    RatioRule,
    SneakPathRule,
    run_erc,
)
from repro.signoff.extract import ChannelGeom, extract_cell
from repro.signoff.timing import TimingParams, timing_findings, worst_paths
from repro.timing.model import TimingModel


def _findings(rule, circuit, **kw):
    ctx = ERCContext(circuit, **kw)
    return rule.run(ctx)


def _geom(length, width, depletion=False):
    from repro.layout.geometry import Rect

    return ChannelGeom(length, width, depletion, Rect(0, 0, width, length))


class TestFloatingGate:
    def test_undriven_gate_flagged(self):
        c = Circuit("c")
        c.add_enhancement("mystery", "x", GND, label="t")
        out = _findings(FloatingGateRule(), c, ports=frozenset({"x"}))
        assert len(out) == 1 and out[0].where == "mystery"

    def test_port_and_channel_gates_are_fine(self):
        c = Circuit("c")
        c.add_enhancement("a", "x", GND, label="t1")
        c.add_enhancement("x", "y", GND, label="t2")  # x driven as channel
        out = _findings(FloatingGateRule(), c, ports=frozenset({"a", "y"}))
        assert out == []


class TestDynamicRefresh:
    def _storage(self, refresh_gate):
        c = Circuit("c")
        c.add_enhancement(refresh_gate, "d", "s", label="wr")
        c.add_enhancement("s", "q", GND, label="rd")
        return c

    def test_clock_refreshed_storage_passes(self):
        c = self._storage("phi1")
        out = _findings(
            DynamicRefreshRule(), c, clocks=("phi1",),
            ports=frozenset({"d", "q"}),
        )
        assert out == []

    def test_data_gated_storage_flagged(self):
        c = self._storage("enable")
        out = _findings(
            DynamicRefreshRule(), c, clocks=("phi1",),
            ports=frozenset({"d", "q", "enable"}),
        )
        assert [f.where for f in out] == ["s"]


class TestClockDiscipline:
    def test_master_slave_is_clean(self):
        c = Circuit("c")
        c.add_enhancement("phi1", "d", "m", label="wr")
        c.add_enhancement("m", "mbar", GND, label="inv")
        c.add_enhancement("phi2", "mbar", "s", label="xfer")
        out = _findings(
            ClockDisciplineRule(), c, clocks=("phi1", "phi2"),
            ports=frozenset({"d", "s"}),
        )
        assert out == []

    def test_same_phase_feedback_flagged(self):
        # The slave transfer regated onto phi1: write and read-back close
        # a loop inside one phase.
        c = Circuit("c")
        c.add_enhancement("phi1", "d", "m", label="wr")
        c.add_enhancement("m", "mbar", "z", label="inv")
        c.add_enhancement("phi1", "mbar", "m", label="fb")
        out = _findings(
            ClockDisciplineRule(), c, clocks=("phi1", "phi2"),
            ports=frozenset({"d", "z"}),
        )
        assert len(out) == 1 and out[0].where == "phi1"


class TestRatio:
    def _inv(self):
        c = Circuit("c")
        c.add_depletion_load("out", label="pu")
        c.add_enhancement("a", "out", GND, label="pd")
        return c

    def test_no_geometry_is_an_info_skip(self):
        out = _findings(RatioRule(), self._inv(), ports=frozenset({"a"}))
        assert [f.severity for f in out] == ["info"]

    def test_standard_sizing_passes(self):
        geom = {"pu": _geom(8, 2, True), "pd": _geom(2, 4)}
        out = _findings(
            RatioRule(), self._inv(), ports=frozenset({"a"}), device_geom=geom
        )
        assert out == []

    def test_series_stack_at_exactly_four_passes(self):
        c = Circuit("c")
        c.add_depletion_load("out", label="pu")
        c.add_enhancement("a", "out", "mid", label="pd1")
        c.add_enhancement("b", "mid", GND, label="pd2")
        geom = {
            "pu": _geom(8, 2, True),
            "pd1": _geom(2, 4),
            "pd2": _geom(2, 4),
        }
        out = _findings(
            RatioRule(), c, ports=frozenset({"a", "b"}), device_geom=geom
        )
        assert out == []  # 4 / (0.5 + 0.5) == 4.0, boundary inclusive

    def test_weak_pullup_flagged(self):
        geom = {"pu": _geom(2, 2, True), "pd": _geom(2, 4)}
        out = _findings(
            RatioRule(), self._inv(), ports=frozenset({"a"}), device_geom=geom
        )
        assert len(out) == 1 and out[0].severity == "error"
        assert "ratio 2.00" in out[0].detail


class TestSneakPath:
    def test_direct_bridge_flagged(self):
        c = Circuit("c")
        c.add_enhancement("g", VDD, GND, label="bridge")
        out = _findings(SneakPathRule(), c, ports=frozenset({"g"}))
        assert any("bridges VDD and GND" in f.detail for f in out)

    def test_pass_chain_between_rails_flagged(self):
        c = Circuit("c")
        c.add_enhancement("e1", VDD, "mid", label="p1")
        c.add_enhancement("e2", "mid", GND, label="p2")
        out = _findings(SneakPathRule(), c, ports=frozenset({"e1", "e2"}))
        assert len(out) == 1
        assert f"{VDD} - mid - {GND}" in out[0].detail

    def test_inverter_pulldown_is_not_a_sneak_path(self):
        c = Circuit("c")
        c.add_depletion_load("out", label="pu")
        c.add_enhancement("a", "out", GND, label="pd")
        out = _findings(SneakPathRule(), c, ports=frozenset({"a"}))
        assert out == []


class TestCleanCells:
    @pytest.mark.parametrize("kind", ["comparator", "accumulator"])
    @pytest.mark.parametrize("positive", [True, False])
    def test_extracted_cells_pass_all_rules(self, kind, positive):
        b = cell_bundle(kind, positive)
        ex = extract_cell(b.layout)
        clocks = tuple(ex.net_of_port.get(c, c) for c in b.clocks)
        ctx = ERCContext(
            ex.circuit,
            clocks=clocks,
            ports=frozenset(ex.net_of_port.values()),
            device_geom=ex.device_geom,
        )
        findings = run_erc(ctx)
        assert [f for f in findings if f.severity != "info"] == []

    def test_rule_battery_is_complete(self):
        assert {r.name for r in ALL_RULES} == {
            "floating-gate", "dynamic-refresh", "clock-discipline",
            "ratio", "sneak-path",
        }


class TestTiming:
    def test_budget_is_half_beat_minus_nonoverlap(self):
        assert TimingParams().budget_ns(TimingModel()) == pytest.approx(100.0)

    def _chain(self, n):
        c = Circuit("c")
        prev = "src"
        for i in range(n):
            c.add_enhancement(VDD, prev, f"n{i}", label=f"p{i}")
            prev = f"n{i}"
        return c

    def test_short_chain_within_budget(self):
        paths = worst_paths(
            self._chain(5), clocks=("phi1",), ports=("src",)
        )
        assert all(p.ok for p in paths)
        assert paths[0].delay_ns == pytest.approx(0.35 * 15)  # 0.35*n(n+1)/2

    def test_long_chain_blows_budget(self):
        paths = worst_paths(
            self._chain(40), clocks=("phi1",), ports=("src",)
        )
        assert not paths[0].ok
        assert paths[0].delay_ns == pytest.approx(0.35 * 820)

    def test_other_phase_devices_are_off(self):
        c = Circuit("c")
        c.add_enhancement("phi2", "src", "far", label="xfer")
        paths = worst_paths(c, clocks=("phi1", "phi2"), ports=("src", "far"))
        by_phase = {p.phase: p for p in paths}
        assert by_phase["phi1"].delay_ns == 0.0
        assert by_phase["phi2"].delay_ns > 0.0

    def test_resistance_scales_with_extracted_z(self):
        c = self._chain(1)
        slow = worst_paths(
            c, clocks=("phi1",), ports=("src",),
            device_geom={"p0": _geom(8, 2)},
        )
        fast = worst_paths(
            c, clocks=("phi1",), ports=("src",),
            device_geom={"p0": _geom(2, 4)},
        )
        assert slow[0].delay_ns == pytest.approx(8 * fast[0].delay_ns)

    def test_findings_form(self):
        findings = timing_findings(
            self._chain(40), clocks=("phi1",), ports=("src",)
        )
        assert [f.severity for f in findings] == ["error"]
        assert findings[0].rule == "phase-budget"
