"""Every Section 3.3.1 alternative: correctness and characteristics."""

import math

import pytest
from hypothesis import given, settings

from repro import match_oracle, parse_pattern
from repro.baselines import (
    BoyerMooreMatcher,
    BroadcastMatcher,
    KMPMatcher,
    ShiftOrMatcher,
    UnidirectionalArrayMatcher,
    boyer_moore_match,
    fischer_paterson_match,
    kmp_match,
    naive_match,
    shift_or_match,
)
from repro.baselines.broadcast import BroadcastTimingModel
from repro.baselines.naive import OpCounter
from repro.errors import PatternError

from conftest import AB4, patterns, texts


class TestNaive:
    @settings(max_examples=30, deadline=None)
    @given(pattern=patterns(), text=texts())
    def test_matches_oracle(self, pattern, text):
        pcs = parse_pattern(pattern, AB4)
        assert naive_match(pcs, list(text)) == match_oracle(pcs, list(text))

    def test_comparison_count_scales_with_pattern(self, ab4):
        text = list("A" * 50)
        counts = []
        for L in (2, 4, 8):
            counter = OpCounter()
            naive_match(parse_pattern("A" * L, ab4), text, counter)
            counts.append(counter.comparisons)
        assert counts[0] < counts[1] < counts[2]


class TestKMP:
    @settings(max_examples=30, deadline=None)
    @given(pattern=patterns(wildcards=False), text=texts())
    def test_matches_oracle_exact(self, pattern, text):
        pcs = parse_pattern(pattern, AB4)
        assert kmp_match(pcs, list(text)) == match_oracle(pcs, list(text))

    def test_rejects_wildcards(self, ab4):
        """Section 3.3.1: the matches relation is not transitive with
        wild cards, so KMP's self-match tables are unusable."""
        with pytest.raises(PatternError):
            KMPMatcher(parse_pattern("AXB", ab4))

    def test_failure_function(self, ab4):
        m = KMPMatcher(parse_pattern("ABAB", ab4))
        assert m.failure == [0, 0, 1, 2]

    def test_linear_comparisons(self, ab4):
        counter = OpCounter()
        kmp_match(parse_pattern("ABAB", ab4), list("ABAB" * 25), counter)
        assert counter.comparisons <= 2 * 100


class TestBoyerMoore:
    @settings(max_examples=30, deadline=None)
    @given(pattern=patterns(wildcards=False), text=texts())
    def test_matches_oracle_exact(self, pattern, text):
        pcs = parse_pattern(pattern, AB4)
        assert boyer_moore_match(pcs, list(text)) == match_oracle(pcs, list(text))

    def test_rejects_wildcards(self, ab4):
        with pytest.raises(PatternError):
            BoyerMooreMatcher(parse_pattern("XA", ab4))

    def test_sublinear_scanning_on_mismatching_text(self, ab4):
        """BM examines fewer characters than the text length when the
        pattern's last character is rare -- the skip behaviour that
        requires random access and thus disqualifies it for streaming."""
        m = BoyerMooreMatcher(parse_pattern("DDDD", ab4))
        text = list("ABCABC" * 40)
        assert m.characters_examined(text) < len(text)


class TestShiftOr:
    @settings(max_examples=30, deadline=None)
    @given(pattern=patterns(max_len=6), text=texts())
    def test_matches_oracle_with_wildcards(self, pattern, text):
        pcs = parse_pattern(pattern, AB4)
        assert shift_or_match(pcs, list(text)) == match_oracle(pcs, list(text))

    def test_word_cost_grows_past_word_width(self, ab4):
        short = ShiftOrMatcher(parse_pattern("A" * 8, ab4))
        long = ShiftOrMatcher(parse_pattern("A" * 100, ab4))
        assert short.words_per_character(32) == 1
        assert long.words_per_character(32) == 4


class TestFischerPaterson:
    @settings(max_examples=20, deadline=None)
    @given(pattern=patterns(max_len=5), text=texts(max_len=25))
    def test_matches_oracle_with_wildcards(self, pattern, text):
        pcs = parse_pattern(pattern, AB4)
        assert fischer_paterson_match(pcs, list(text)) == match_oracle(pcs, list(text))

    def test_all_wildcard_pattern(self, ab4):
        pcs = parse_pattern("XX", ab4)
        assert fischer_paterson_match(pcs, list("ABC")) == [False, True, True]

    def test_superlinear_work_model(self):
        from repro.baselines.fischer_paterson import fft_work_estimate

        w1 = fft_work_estimate(1000, 8, 4)
        w2 = fft_work_estimate(2000, 8, 4)
        assert w2 > 2 * w1  # more than linear


class TestBroadcast:
    @settings(max_examples=25, deadline=None)
    @given(pattern=patterns(max_len=6), text=texts())
    def test_matches_oracle(self, pattern, text):
        pcs = parse_pattern(pattern, AB4)
        assert BroadcastMatcher(pcs).match(list(text)) == match_oracle(pcs, list(text))

    def test_unbuffered_cycle_time_grows_linearly(self):
        t = BroadcastTimingModel()
        assert t.cycle_time(100) - t.cycle_time(50) == pytest.approx(
            50 * t.t_load_per_cell
        )

    def test_buffered_cycle_time_grows_logarithmically(self):
        t = BroadcastTimingModel(buffered=True, buffer_fanout=4)
        t16, t256 = t.cycle_time(16), t.cycle_time(256)
        assert t256 < 2 * t16  # log growth, not 16x

    def test_drive_power_proportional_to_cells(self):
        t = BroadcastTimingModel()
        assert t.drive_power(64) == pytest.approx(8 * t.drive_power(8))

    def test_reload_costs_cells(self, ab4):
        m = BroadcastMatcher(parse_pattern("ABCD", ab4))
        assert m.load_pattern_cycles() == 4


class TestUnidirectional:
    @settings(max_examples=25, deadline=None)
    @given(pattern=patterns(max_len=5), text=texts(max_len=25))
    def test_matches_oracle(self, pattern, text):
        pcs = parse_pattern(pattern, AB4)
        m = UnidirectionalArrayMatcher(pcs)
        assert m.match(list(text)) == match_oracle(pcs, list(text))

    def test_full_rate_streaming(self, ab4):
        """The rejected design streams text at 1 char/beat (vs 1/2)..."""
        m = UnidirectionalArrayMatcher(parse_pattern("ABC", ab4))
        assert m.beats_for_text(1000) < 1.1 * 1000

    def test_but_pays_reload_per_query(self, ab4):
        """...and pays a serial pattern reload before every query, the
        Section 3.3.1 rejection rationale."""
        m = UnidirectionalArrayMatcher(parse_pattern("A" * 20, ab4))
        many_short = m.beats_for_workload([10] * 50)
        one_long = m.beats_for_workload([500])
        assert many_short > 50 * m.load_beats  # reload cost present
        assert m.load_beats * 50 > m.load_beats * 1  # amortisation matters
        assert one_long < many_short
