"""The self-timed (asynchronous) array of Section 3.3.2."""

import random

import pytest

from repro import Alphabet, match_oracle, parse_pattern
from repro.core.array import MATCHER_CHANNELS, SystolicMatcherArray, TextToken
from repro.core.cells import MatcherCellKernel, ResultToken
from repro.errors import SimulationError
from repro.streams import RecirculatingPattern
from repro.systolic.cell import is_bubble
from repro.systolic.selftimed import SelfTimedLinearArray

from conftest import AB4


def run_selftimed(pattern, text, n_cells, delays=None, fifo_depth=2):
    ref = SystolicMatcherArray(n_cells)
    items = RecirculatingPattern(parse_pattern(pattern, AB4)).items
    tokens = [TextToken(c, i) for i, c in enumerate(text)]
    schedule = ref.input_schedule(items, tokens, ref.beats_needed(len(tokens)))
    array = SelfTimedLinearArray(
        n_cells, MATCHER_CHANNELS, lambda i: MatcherCellKernel(), ("p", "s"),
        cell_delays=delays, fifo_depth=fifo_depth,
    )
    outs = array.run(schedule)
    raw = {}
    for o in outs:
        if not is_bubble(o["s"]) and isinstance(o["r"], ResultToken):
            raw[o["s"].index] = o["r"].value
    k = len(pattern) - 1
    results = [
        bool(raw.get(i, False)) if i >= k else False for i in range(len(text))
    ]
    return results, array


class TestFunctionalEquivalence:
    def test_paper_example_without_a_clock(self):
        results, _ = run_selftimed("AXC", "ABCAACACCAB", 3)
        assert results == match_oracle(
            parse_pattern("AXC", AB4), list("ABCAACACCAB")
        )

    def test_random_cases_with_heterogeneous_speeds(self):
        """'Each of the cells may run at its own pace' -- and the results
        must not depend on the pace (Kahn determinism)."""
        random.seed(101)
        for _ in range(10):
            m = random.randint(1, 5)
            L = random.randint(1, m)
            pattern = "".join(random.choice("ABCDX") for _ in range(L))
            text = "".join(random.choice("ABCD") for _ in range(random.randint(0, 18)))
            delays = [random.uniform(0.3, 3.0) for _ in range(m)]
            results, _ = run_selftimed(pattern, text, m, delays=delays)
            assert results == match_oracle(parse_pattern(pattern, AB4), list(text))

    def test_deeper_fifos_change_nothing(self):
        for depth in (2, 3, 5):
            results, _ = run_selftimed("AB", "ABAB", 2, fifo_depth=depth)
            assert results == [False, True, False, True]


class TestTiming:
    def throughput(self, delays):
        _, array = run_selftimed("ABCD", "ABCD" * 25, 4, delays=delays)
        return array.stats.mean_slot_interval

    def test_slowest_cell_sets_the_pace(self):
        uniform = self.throughput([1.0] * 4)
        one_slow = self.throughput([1.0, 1.0, 3.0, 1.0])
        assert uniform == pytest.approx(1.0, rel=0.05)
        assert one_slow == pytest.approx(3.0, rel=0.05)

    def test_firings_counted(self):
        _, array = run_selftimed("AB", "ABABAB", 2)
        assert array.stats.firings > 0
        assert array.stats.finish_time > 0


class TestValidation:
    def test_shallow_fifos_rejected(self):
        with pytest.raises(SimulationError):
            SelfTimedLinearArray(
                2, MATCHER_CHANNELS, lambda i: MatcherCellKernel(), ("p", "s"),
                fifo_depth=1,
            )

    def test_bad_delays_rejected(self):
        with pytest.raises(SimulationError):
            SelfTimedLinearArray(
                2, MATCHER_CHANNELS, lambda i: MatcherCellKernel(), ("p", "s"),
                cell_delays=[1.0],
            )
        with pytest.raises(SimulationError):
            SelfTimedLinearArray(
                2, MATCHER_CHANNELS, lambda i: MatcherCellKernel(), ("p", "s"),
                cell_delays=[1.0, -1.0],
            )

    def test_zero_cells_rejected(self):
        with pytest.raises(SimulationError):
            SelfTimedLinearArray(
                0, MATCHER_CHANNELS, lambda i: MatcherCellKernel(), ("p", "s")
            )
