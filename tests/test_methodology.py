"""Section 4: the task graph and the executable design flow."""

import pytest

from repro.errors import MethodologyError
from repro.methodology import DesignFlow, FIGURE_4_1, TaskGraph
from repro.methodology.tasks import figure_4_1_graph


class TestTaskGraph:
    def test_topological_order_respects_dependencies(self):
        g = figure_4_1_graph()
        order = g.topological_order()
        pos = {t: i for i, t in enumerate(order)}
        for spec in FIGURE_4_1:
            for dep in spec.depends_on:
                assert pos[dep] < pos[spec.name]

    def test_algorithm_comes_first(self):
        """'The chip design must begin with an algorithm design.'"""
        assert figure_4_1_graph().topological_order()[0] == "algorithm"

    def test_boundary_layouts_come_last(self):
        assert figure_4_1_graph().topological_order()[-1] == "cell_boundary_layouts"

    def test_critical_path_dominated_by_algorithm(self):
        """Algorithm design carries the largest effort weight -- 'a large
        portion of the design time should be devoted to algorithm
        design'."""
        path, total = figure_4_1_graph().critical_path()
        assert path[0] == "algorithm"
        algorithm_effort = next(s.effort_weeks for s in FIGURE_4_1
                                if s.name == "algorithm")
        assert algorithm_effort >= max(
            s.effort_weeks for s in FIGURE_4_1 if s.name != "algorithm"
        )
        assert total >= algorithm_effort

    def test_parallel_schedule_waves(self):
        waves = figure_4_1_graph().parallel_schedule()
        assert waves[0] == ["algorithm"]
        assert sum(len(w) for w in waves) == len(FIGURE_4_1)

    def test_cycle_detection(self):
        g = TaskGraph()
        g.add_task("a", ["b"])
        g.add_task("b", ["a"])
        with pytest.raises(MethodologyError):
            g.topological_order()

    def test_missing_dependency_detected(self):
        g = TaskGraph()
        g.add_task("a", ["ghost"])
        with pytest.raises(MethodologyError):
            g.validate()

    def test_duplicate_task_rejected(self):
        g = TaskGraph()
        g.add_task("a")
        with pytest.raises(MethodologyError):
            g.add_task("a")


class TestDesignFlow:
    @pytest.fixture(scope="class")
    def artifacts(self):
        return DesignFlow(columns=3, char_bits=1).run()

    def test_every_task_produced_an_artifact(self, artifacts):
        assert set(artifacts) == {s.name for s in FIGURE_4_1}

    def test_algorithm_verified_against_oracle(self, artifacts):
        assert artifacts["algorithm"]["verified"] is True

    def test_placement_covers_whole_array(self, artifacts):
        placement = artifacts["cell_combinations"]["placement"]
        assert len(placement) == 3 * (1 + 1)  # columns x (bit rows + acc)

    def test_four_cell_circuits_built(self, artifacts):
        assert len(artifacts["cell_logic_circuits"]) == 4

    def test_layouts_drc_clean_by_construction(self, artifacts):
        # the flow raises on violations; reaching here means clean, but
        # re-check one cell independently:
        from repro.layout.cells import check_cell

        layout = artifacts["cell_layouts"][("comparator", True)]
        assert check_cell(layout) == []

    def test_final_artifact_is_fabricatable_cif(self, artifacts):
        from repro.layout.cif import parse_cif

        cif = artifacts["cell_boundary_layouts"]["cif"]
        parsed = parse_cif(cif)
        assert parsed.flatten()  # non-empty geometry

    def test_flow_order_is_graph_order(self):
        flow = DesignFlow(columns=2, char_bits=1)
        assert flow.graph.topological_order()[0] == "algorithm"
