"""CIF writing/parsing round trips and the Plate 2 chip assembly."""

import pytest

from repro.errors import CIFError, LayoutError
from repro.layout.assembly import ChipAssembler
from repro.layout.cif import CIFWriter, parse_cif
from repro.layout.geometry import Rect
from repro.layout.layers import Layer


class TestCIFRoundTrip:
    def build_writer(self):
        w = CIFWriter()
        sym = w.new_symbol("cell")
        sym.add_box(Layer.METAL, Rect(0, 0, 3, 7))
        sym.add_box(Layer.POLY, Rect(1, 1, 3, 9))
        top = w.new_symbol("top")
        top.call(sym.symbol_id, 10, 0)
        top.call(sym.symbol_id, 20, 4)
        w.place(top, 0, 0)
        return w

    def test_round_trip_geometry(self):
        w = self.build_writer()
        parsed = parse_cif(w.render())
        assert parsed.scale_denominator == 2
        flat = parsed.flatten()
        # geometry in half-lambda: original rects doubled and translated
        metal = sorted((r.x0, r.y0, r.x1, r.y1) for r in flat[Layer.METAL])
        assert metal == [(20, 0, 26, 14), (40, 8, 46, 22)]

    def test_odd_widths_supported(self):
        """Metal's 3-lambda width forces the half-lambda scale trick."""
        w = CIFWriter()
        sym = w.new_symbol()
        sym.add_box(Layer.METAL, Rect(0, 0, 3, 3))
        w.place(sym, 0, 0)
        text = w.render()
        assert "DS 1 250 2;" in text
        parse_cif(text)  # must not raise

    def test_lambda_scale_recorded(self):
        parsed = parse_cif(self.build_writer().render())
        assert parsed.lambda_centimicrons == 250

    @pytest.mark.parametrize(
        "bad",
        [
            "B 2 2 1 1;\nE",                 # box outside any symbol
            "DS 1 250 2;\nB 2 2 1 1;\nDF;\nE",  # box before layer select
            "DS 1;\nDS 2;\nDF;\nE",          # nested DS
            "DF;\nE",                        # DF without DS
            "L NOPE;\nE",                    # unknown layer
            "Q 1 2;\nE",                     # unknown command
            "DS 1 250 2;\nDF;",              # missing E
            "E;B 2 2 1 1;",                  # command after E
        ],
    )
    def test_malformed_cif_rejected(self, bad):
        with pytest.raises(CIFError):
            parse_cif(bad)

    def test_call_to_undefined_symbol_rejected_at_flatten(self):
        parsed = parse_cif("C 9 T 0 0;\nE")
        with pytest.raises(CIFError):
            parsed.flatten()

    def test_comments_ignored(self):
        parsed = parse_cif("( hello );\nDS 1 250 2;\nL NM;\nB 4 4 2 2;\nDF;\nC 1 T 0 0;\nE")
        assert Layer.METAL in parsed.flatten()


class TestChipAssembly:
    def test_prototype_floorplan_counts(self):
        """Plate 2: 8 columns x (2 comparator rows + accumulators)."""
        asm = ChipAssembler(8, 2)
        fp = asm.floorplan()
        assert fp.n_cells == 8 * 3
        assert fp.core_area > 0
        assert fp.die_area > fp.core_area

    def test_pad_ring_covers_every_pin(self):
        asm = ChipAssembler(8, 2)
        fp = asm.floorplan()
        assert fp.n_pads == len(asm.pin_names())
        names = [p for p, _ in fp.pads]
        assert "PHI1" in names and "R_OUT" in names and "S_IN1" in names

    def test_area_scales_linearly_with_columns(self):
        a4 = ChipAssembler(4, 2).floorplan().core_area
        a8 = ChipAssembler(8, 2).floorplan().core_area
        assert a8 == pytest.approx(2 * a4, rel=0.01)

    def test_polarity_alternates_along_rows(self):
        asm = ChipAssembler(4, 1)
        fp = asm.floorplan()
        accum_row = [c for c in fp.cell_instances if c[0].startswith("accumulator")]
        kinds = [name for name, _, _ in sorted(accum_row, key=lambda c: c[1])]
        assert kinds == [
            "accumulator_neg", "accumulator_pos",
            "accumulator_neg", "accumulator_pos",
        ]

    def test_cif_flattens_to_expected_cell_count(self):
        asm = ChipAssembler(3, 1)
        parsed = parse_cif(asm.to_cif())
        flat = parsed.flatten()
        # every layer of every instance present; implants only from cells
        assert len(flat[Layer.IMPLANT]) > 0
        assert len(flat[Layer.OVERGLASS]) == len(asm.pin_names())

    def test_area_report_fields(self):
        rep = ChipAssembler(8, 2).area_report()
        assert rep["cells"] == 24
        assert rep["die_area_mm2"] > rep["core_area_mm2"] * 0  # present
        assert rep["pads"] == len(ChipAssembler(8, 2).pin_names())

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(LayoutError):
            ChipAssembler(0, 2)
