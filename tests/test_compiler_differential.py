"""Differential verification: compiled designs vs the workload engines.

Four independent implementations of each kernel -- the definitional
oracle, the vectorized fast path, the compiled design's structural (IR)
simulation, and the compiled design's switch-level transistor simulation
-- must produce identical results on randomized streams.  The structural
sweep covers a grid of (cells, width) parameter points; the transistor
netlist, being a few thousand devices, is swept at smaller sizes.
"""

import random

import pytest

from repro.alphabet import Alphabet
from repro.compiler import compile_workload
from repro.compiler.verify import differential
from repro.workloads.registry import WORKLOADS


def _alphabet(char_bits):
    return Alphabet("".join(chr(ord("A") + i) for i in range(1 << char_bits)))


def _text(rng, alphabet, n):
    return "".join(rng.choice(alphabet.symbols) for _ in range(n))


MATCH_GRID = [(4, 1), (8, 2), (12, 2), (16, 4)]
COUNT_GRID = [(4, 1), (8, 2), (12, 3)]
IP_GRID = [(2, 1), (4, 2), (6, 2), (6, 3)]


class TestStructuralSweep:
    """IR-level simulation against oracle + fast on random streams."""

    @pytest.mark.parametrize("cells,char_bits", MATCH_GRID)
    def test_match(self, cells, char_bits):
        rng = random.Random(1000 + cells + char_bits)
        al = _alphabet(char_bits)
        chip = compile_workload("match", cells, char_bits=char_bits)
        for trial in range(3):
            pattern = _text(rng, al, rng.randint(1, cells))
            stream = _text(rng, al, rng.randint(4, 30))
            d = differential(chip, pattern, stream, al, engines=("ir",))
            assert d.ok, d.detail

    @pytest.mark.parametrize("cells,char_bits", COUNT_GRID)
    def test_count(self, cells, char_bits):
        rng = random.Random(2000 + cells + char_bits)
        al = _alphabet(char_bits)
        chip = compile_workload("count", cells, char_bits=char_bits)
        for trial in range(3):
            pattern = _text(rng, al, rng.randint(1, cells))
            stream = _text(rng, al, rng.randint(4, 30))
            d = differential(chip, pattern, stream, al, engines=("ir",))
            assert d.ok, d.detail

    @pytest.mark.parametrize("cells,data_bits", IP_GRID)
    def test_inner_product(self, cells, data_bits):
        rng = random.Random(3000 + cells + data_bits)
        top = 1 << data_bits
        chip = compile_workload("inner-product", cells, data_bits=data_bits)
        for trial in range(3):
            taps = [rng.randrange(top) for _ in range(rng.randint(1, cells))]
            if not any(taps):
                taps[0] = 1
            stream = [rng.randrange(top) for _ in range(rng.randint(4, 24))]
            d = differential(chip, taps, stream, engines=("ir",))
            assert d.ok, d.detail

    def test_wildcards_match_the_oracle(self):
        al = _alphabet(2)
        chip = compile_workload("match", 8, char_bits=2)
        d = differential(chip, "AXB", "AABACBABB", al, engines=("ir",))
        assert d.ok, d.detail
        chip = compile_workload("count", 8, char_bits=2)
        d = differential(chip, "AXB", "AABACBABB", al, engines=("ir",))
        assert d.ok, d.detail


class TestSwitchLevelSweep:
    """The generated transistor netlist against all other engines."""

    def test_match_switch_level(self):
        rng = random.Random(41)
        al = _alphabet(1)
        chip = compile_workload("match", 3, char_bits=1)
        pattern = _text(rng, al, 2)
        stream = _text(rng, al, 12)
        d = differential(chip, pattern, stream, al, engines=("ir", "switch"))
        assert d.ok, d.detail

    def test_count_switch_level(self):
        rng = random.Random(42)
        al = _alphabet(2)
        chip = compile_workload("count", 3, char_bits=2)
        pattern = _text(rng, al, 3)
        stream = _text(rng, al, 10)
        d = differential(chip, pattern, stream, al, engines=("ir", "switch"))
        assert d.ok, d.detail

    def test_inner_product_switch_level(self):
        rng = random.Random(43)
        chip = compile_workload("inner-product", 2, data_bits=2)
        taps = [3, 2]
        stream = [rng.randrange(4) for _ in range(10)]
        d = differential(chip, taps, stream, engines=("ir", "switch"))
        assert d.ok, d.detail


class TestWorkloadEntryPoint:
    def test_registry_compiles_chips(self):
        chip = WORKLOADS["count"].compile_chip(6, char_bits=2)
        assert chip.spec.name == "count_6x2"
        al = _alphabet(2)
        assert chip.simulate("AB", "CABAB", al) == [0, 0, 2, 0, 2]

    def test_uncompilable_workloads_say_so(self):
        from repro.workloads.registry import WorkloadError

        with pytest.raises(WorkloadError):
            WORKLOADS["correlation"].compile_chip(4)
