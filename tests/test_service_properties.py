"""Property: the farm's answers are bit-identical to the oracle.

Whatever the scheduler does -- direct placement, multipass for long
patterns, text sharding across workers, retry-with-reassignment after a
worker death, stuck-beat stalls, degradation to the software baseline --
every completed job's result stream must equal
:func:`repro.core.reference.match_oracle` on that job's pattern and
text.  Routing is a performance decision; it is never allowed to be a
correctness decision.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Alphabet, match_oracle, parse_pattern
from repro.chip.chip import ChipSpec
from repro.service import (
    FaultInjector,
    MatcherService,
    Priority,
    SchedulerConfig,
    pool_from_wafers,
    uniform_pool,
)
from repro.wafer.wafer import Wafer

AB = Alphabet("ABCD")

patterns = st.text(alphabet="ABCDX", min_size=1, max_size=14)
texts = st.text(alphabet="ABCD", min_size=0, max_size=90)


@st.composite
def workloads(draw):
    jobs = draw(st.lists(st.tuples(patterns, texts), min_size=1, max_size=8))
    fault_seed = draw(st.integers(0, 2**16))
    p_death = draw(st.sampled_from([0.0, 0.1, 0.3]))
    p_stuck = draw(st.sampled_from([0.0, 0.2]))
    n_workers = draw(st.integers(1, 4))
    n_cells = draw(st.sampled_from([4, 6, 8]))
    return jobs, fault_seed, p_death, p_stuck, n_workers, n_cells


@settings(max_examples=25, deadline=None)
@given(workloads())
def test_service_bit_identical_to_oracle_under_faults(workload):
    jobs, fault_seed, p_death, p_stuck, n_workers, n_cells = workload
    pool = uniform_pool(n_workers, ChipSpec(n_cells, 2), AB)
    svc = MatcherService(
        pool,
        config=SchedulerConfig(
            queue_capacity=len(jobs) + 1,
            wide_text_threshold=48,
            min_shard_chars=12,
            max_retries=1,
        ),
        faults=FaultInjector(
            seed=fault_seed, p_death=p_death, p_stuck=p_stuck
        ),
    )
    ids = [
        svc.submit(
            p,
            t,
            tenant=f"tenant-{i % 3}",
            priority=Priority.INTERACTIVE if i % 2 else Priority.BATCH,
        )
        for i, (p, t) in enumerate(jobs)
    ]
    results = {r.job_id: r for r in svc.drain()}
    assert len(results) == len(jobs)
    for jid, (p, t) in zip(ids, jobs):
        want = match_oracle(parse_pattern(p, AB), list(t))
        assert results[jid].results == want, (
            f"job {jid} ({p!r} on {t!r}) routed as "
            f"{results[jid].mode}/attempts={results[jid].attempts} diverged"
        )


def test_seeded_storm_covers_every_routing_path():
    """One big deterministic run that provably exercises multipass,
    sharding, retry-reassignment, and the software fallback at once --
    the acceptance scenario of the farm issue."""
    rng = random.Random(2026)
    wafers = [Wafer(2, 6, defect_rate=0.15, seed=s) for s in range(4)]
    pool = pool_from_wafers(wafers, AB)
    svc = MatcherService(
        pool,
        config=SchedulerConfig(
            queue_capacity=64,
            wide_text_threshold=80,
            min_shard_chars=20,
            max_retries=1,
        ),
        faults=FaultInjector(seed=11, p_death=0.08, p_stuck=0.15),
    )
    jobs = []
    # The first pop happens while the whole pool is idle, so a wide first
    # job is guaranteed to exercise the text-sharding path.
    wide_pattern, wide_text = "ABXA", "".join(
        rng.choice("ABCD") for _ in range(150)
    )
    jobs.append((svc.submit(wide_pattern, wide_text, tenant="t0"),
                 wide_pattern, wide_text))
    for i in range(39):
        pattern = "".join(rng.choice("ABCDX") for _ in range(rng.randint(1, 18)))
        text = "".join(rng.choice("ABCD") for _ in range(rng.randint(0, 160)))
        jid = svc.submit(pattern, text, tenant=f"t{i % 5}")
        jobs.append((jid, pattern, text))
    results = {r.job_id: r for r in svc.drain()}
    for jid, pattern, text in jobs:
        want = match_oracle(parse_pattern(pattern, AB), list(text))
        assert results[jid].results == want
    modes = {r.mode for r in results.values()}
    assert {"direct", "multipass", "text-sharded"} <= modes
    retried = [r for r in results.values() if r.attempts > 0]
    assert retried, "the storm must exercise retry-with-reassignment"
    assert all(
        results[jid].results == match_oracle(parse_pattern(p, AB), list(t))
        for jid, p, t in jobs
        if results[jid].attempts > 0
    )
    assert svc.telemetry.deaths > 0
    assert svc.telemetry.makespan_beats > 0
    assert svc.telemetry.completed == 40
