"""The whole matcher at switch level vs the behavioural model/oracle.

This is the library's deepest cross-level check: the same feeding
schedule drives a transistor netlist of the full Figure 3-3/3-4 array and
must reproduce the algorithm bit for bit.
"""

import random

import pytest

from repro import Alphabet, match_oracle
from repro.circuit.chipnet import GateLevelMatcher, MatcherArrayNetlist
from repro.errors import CircuitError, PatternError


class TestNetlistStructure:
    def test_polarity_checkerboard(self):
        net = MatcherArrayNetlist(4, 2)
        assert net.is_positive(0, 0)
        assert not net.is_positive(1, 0)
        assert not net.is_positive(0, 1)
        assert net.is_positive(1, 1)

    def test_phase_matches_polarity_parity(self):
        net = MatcherArrayNetlist(3, 2)
        for i in range(3):
            for j in range(3):
                assert net.phase_of(i, j) == net.phi[(i + j) % 2]

    def test_transistor_count_scales_linearly(self):
        small = MatcherArrayNetlist(2, 2).n_transistors
        large = MatcherArrayNetlist(4, 2).n_transistors
        assert large == pytest.approx(2 * small, rel=0.1)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(CircuitError):
            MatcherArrayNetlist(0, 1)


class TestGateLevelCorrectness:
    def test_paper_example_on_silicon_model(self):
        """The AXC example of Figure 3-1 through the transistor netlist."""
        g = GateLevelMatcher("AXC", Alphabet("ABCD"))
        text = "ABCAACACCAB"
        assert g.match(text) == match_oracle(g.pattern, list(text))

    def test_exhaustive_tiny_space(self, ab2):
        for pattern in ("A", "B", "X", "AB", "BX", "XA"):
            for t in range(8):
                text = format(t, "03b").replace("0", "A").replace("1", "B")
                g = GateLevelMatcher(pattern, ab2)
                assert g.match(text) == match_oracle(g.pattern, list(text)), (
                    pattern,
                    text,
                )

    def test_random_two_bit_cases(self, ab4):
        random.seed(23)
        for _ in range(4):
            L = random.randint(1, 3)
            pattern = "".join(random.choice("ABCDX") for _ in range(L))
            text = "".join(random.choice("ABCD") for _ in range(random.randint(3, 8)))
            g = GateLevelMatcher(pattern, ab4)
            assert g.match(text) == match_oracle(g.pattern, list(text)), (
                pattern,
                text,
            )

    def test_oversized_array(self, ab2):
        g = GateLevelMatcher("AB", ab2, n_cells=3)
        text = "AABAB"
        assert g.match(text) == match_oracle(g.pattern, list(text))

    def test_pattern_must_fit(self, ab2):
        with pytest.raises(PatternError):
            GateLevelMatcher("ABA", ab2, n_cells=2)

    def test_transistor_count_reported(self, ab2):
        g = GateLevelMatcher("AB", ab2)
        assert g.n_transistors > 50
