"""The signoff driver, the CLI gate, seeded-defect mutants, designflow."""

import json

import pytest

from repro.errors import MethodologyError, SignoffError
from repro.methodology.designflow import DesignFlow
from repro.signoff.__main__ import main
from repro.signoff.mutations import mutant_names, run_mutant
from repro.signoff.pipeline import CELL_KINDS, Signoff
from repro.signoff.report import Finding, SignoffReport, StageReport

STAGE_ORDER = ["drc", "extraction", "lvs", "erc", "timing"]


@pytest.fixture(scope="module")
def signoff():
    return Signoff()


class TestReport:
    def test_finding_rejects_unknown_severity(self):
        with pytest.raises(SignoffError):
            Finding("drc", "r", "fatal", "boom")

    def test_stage_lookup(self):
        rep = SignoffReport("x", [StageReport("drc")])
        assert rep.stage("drc").ok
        assert rep.has_stage("drc") and not rep.has_stage("lvs")
        with pytest.raises(SignoffError):
            rep.stage("lvs")

    def test_errors_flip_ok(self):
        stage = StageReport("drc")
        assert stage.ok
        stage.add("metal-width", "error", "too thin")
        rep = SignoffReport("x", [stage])
        assert not stage.ok and not rep.ok
        assert len(rep.errors) == 1

    def test_json_round_trip(self, signoff):
        rep = signoff.run_cell("comparator", True)
        data = json.loads(rep.to_json())
        assert data["name"] == "comparator_pos"
        assert data["ok"] is True
        assert [s["stage"] for s in data["stages"]] == STAGE_ORDER


class TestCleanRuns:
    @pytest.mark.parametrize("kind,positive", CELL_KINDS)
    def test_every_cell_twin_signs_off(self, signoff, kind, positive):
        rep = signoff.run_cell(kind, positive)
        assert rep.ok, rep.summary()
        assert [s.stage for s in rep.stages] == STAGE_ORDER

    def test_chip_signs_off(self, signoff):
        rep = signoff.run_chip(4, 2)
        assert rep.ok, rep.summary()
        assert [s.stage for s in rep.stages] == STAGE_ORDER + ["assembly"]
        assert "PASS" in rep.summary()


class TestMutants:
    @pytest.mark.parametrize("name", mutant_names())
    def test_caught_by_its_stage_and_only_downstream(self, signoff, name):
        mutation, rep = run_mutant(name, signoff)
        stage = rep.stage(mutation.stage)
        assert any(
            mutation.rule in f.rule and f.severity == "error"
            for f in stage.findings
        ), f"{name}: {mutation.stage} missed it: {rep.summary()}"
        for upstream in STAGE_ORDER[: STAGE_ORDER.index(mutation.stage)]:
            if rep.has_stage(upstream):
                assert rep.stage(upstream).ok, (
                    f"{name}: upstream {upstream} dirty: {rep.summary()}"
                )

    def test_unknown_mutant_raises(self, signoff):
        with pytest.raises(SignoffError):
            run_mutant("no-such-defect", signoff)


class TestCLI:
    def test_clean_cell_exits_zero(self, capsys):
        assert main(["--cell", "comparator", "--quiet"]) == 0

    def test_mutant_exits_nonzero_and_writes_json(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main([
            "--mutant", "drc-metal-sliver", "--json", str(out), "--quiet"
        ])
        assert code == 1
        data = json.loads(out.read_text())
        assert data["ok"] is False

    def test_summary_printed_by_default(self, capsys):
        main(["--cell", "accumulator", "--negative"])
        out = capsys.readouterr().out
        assert "PASS" in out and "lvs" in out


class TestDesignFlowGates:
    def test_default_flow_has_no_signoff_tasks(self):
        flow = DesignFlow(2, 2)
        assert not any(t.startswith("signoff_") for t in flow.graph.tasks)

    def test_signoff_tasks_registered_with_blocking_split(self):
        flow = DesignFlow(2, 2, signoff=True)
        gates = [t for t in flow.graph.tasks if t.startswith("signoff_")]
        assert sorted(gates) == [
            "signoff_drc", "signoff_erc", "signoff_extraction",
            "signoff_lvs", "signoff_timing",
        ]
        assert flow.graph.is_blocking("signoff_lvs")
        assert not flow.graph.is_blocking("signoff_timing")

    def test_is_blocking_unknown_task_raises(self):
        flow = DesignFlow(2, 2)
        with pytest.raises(MethodologyError):
            flow.graph.is_blocking("no_such_task")

    def test_flow_with_signoff_runs_clean(self):
        flow = DesignFlow(2, 2, signoff=True)
        arts = flow.run()
        for gate in ("signoff_drc", "signoff_extraction", "signoff_lvs",
                     "signoff_erc", "signoff_timing"):
            assert arts[gate]["ok"] is True

    def test_advisory_failure_is_recorded_not_raised(self):
        flow = DesignFlow(2, 2, signoff=True)

        def explode():
            raise SignoffError("missed the beat")

        flow._runners["signoff_timing"] = explode
        arts = flow.run()
        assert arts["signoff_timing"] == {"advisory_failure": "missed the beat"}

    def test_blocking_failure_raises(self):
        flow = DesignFlow(2, 2, signoff=True)

        def explode():
            raise SignoffError("netlists differ")

        flow._runners["signoff_lvs"] = explode
        with pytest.raises(SignoffError):
            flow.run()
