"""The bidirectional array driver: feeding discipline and phasing."""

import pytest

from repro import Alphabet, match_oracle, parse_pattern
from repro.core.array import SystolicMatcherArray, TextToken
from repro.errors import PatternError, SimulationError
from repro.streams import RecirculatingPattern
from repro.systolic.tracing import TraceRecorder


def items_for(pattern, ab):
    return RecirculatingPattern(parse_pattern(pattern, ab)).items


class TestFeedingDiscipline:
    def test_text_entry_beat_parity_lets_streams_meet(self, ab4):
        """e_s = m + 1 always has parity (m-1) mod 2, the meet condition."""
        for m in range(1, 9):
            arr = SystolicMatcherArray(m)
            assert arr.text_entry_beat() == m + 1
            assert (arr.text_entry_beat() - (m - 1)) % 2 == 0

    def test_pattern_enters_even_beats_only(self, ab4):
        arr = SystolicMatcherArray(3)
        sched = arr.input_schedule(items_for("ABC", ab4), [], 10)
        for b, beat_in in enumerate(sched):
            assert ("p" in beat_in) == (b % 2 == 0)

    def test_text_enters_every_other_beat_after_fill(self, ab4):
        arr = SystolicMatcherArray(3)
        tokens = [TextToken(c, i) for i, c in enumerate("ABCD")]
        sched = arr.input_schedule(items_for("ABC", ab4), tokens, 20)
        text_beats = [b for b, s in enumerate(sched) if "s" in s]
        assert text_beats == [4, 6, 8, 10]

    def test_single_pass_pattern_offset(self, ab4):
        arr = SystolicMatcherArray(2)
        sched = arr.input_schedule(
            items_for("AB", ab4), [], 20, recirculate=False, pattern_offset=3
        )
        p_beats = [b for b, s in enumerate(sched) if "p" in s]
        assert p_beats == [6, 8]  # two items starting at pattern-beat 3

    def test_beats_needed_covers_drain(self, ab4):
        arr = SystolicMatcherArray(4)
        n = arr.beats_needed(10)
        assert n == (4 + 1) + 2 * 9 + 4 + 1


class TestRunSemantics:
    def test_every_complete_window_reported_once(self, ab4):
        arr = SystolicMatcherArray(3)
        raw = arr.run(items_for("ABC", ab4), "ABCABC")
        assert set(raw) >= {2, 3, 4, 5}
        assert raw[2] is True and raw[5] is True
        assert raw[3] is False and raw[4] is False

    def test_results_keyed_by_text_position(self, ab4):
        arr = SystolicMatcherArray(2)
        raw = arr.run(items_for("AA", ab4), "AAAA")
        assert all(raw[q] for q in (1, 2, 3))

    def test_bad_token_indices_rejected(self, ab4):
        arr = SystolicMatcherArray(2)
        with pytest.raises(SimulationError):
            arr.run(items_for("AA", ab4), [TextToken("A", 5)])

    def test_empty_pattern_cycle_rejected(self, ab4):
        arr = SystolicMatcherArray(2)
        with pytest.raises(PatternError):
            arr.run([], "AA")

    def test_oversized_array_every_window_still_once(self, ab4):
        """m > L: each text char meets lambda several times; emissions
        must agree so the surviving (leftmost) one is correct."""
        for extra in (1, 2, 3):
            arr = SystolicMatcherArray(2 + extra)
            raw = arr.run(items_for("AB", ab4), "ABABAB")
            want = match_oracle(parse_pattern("AB", ab4), list("ABABAB"))
            got = [bool(raw.get(i, False)) if i >= 1 else False for i in range(6)]
            assert got == want


class TestTracing:
    def test_recorder_sees_alternating_activity(self, ab4):
        rec = TraceRecorder()
        arr = SystolicMatcherArray(4, recorder=rec)
        arr.run(items_for("ABCD", ab4), "ABCDABCD")
        activity = rec.activity_matrix()
        # in any beat, active cells never adjacent (alternate cells idle)
        for row in activity:
            for i in range(len(row) - 1):
                assert not (row[i] and row[i + 1])

    def test_meetings_follow_figure_3_2(self, ab4):
        """Each cell meets (p_j, s_{i+j}) in sequence: after meeting p_j
        with s_q, the same cell's next meeting is (p_{j+1}, s_{q+1})."""
        rec = TraceRecorder()
        arr = SystolicMatcherArray(3, recorder=rec)
        arr.run(items_for("ABC", ab4), "ABCABC")
        per_cell = {}
        for beat, cell, p, s in rec.meetings("p", "s"):
            per_cell.setdefault(cell, []).append((beat, p.char, s.index))
        for cell, ms in per_cell.items():
            for (b1, _, q1), (b2, _, q2) in zip(ms, ms[1:]):
                assert b2 - b1 == 2          # active on alternate beats
                assert q2 - q1 == 1          # consecutive text chars

    def test_utilization_at_most_half(self, ab4):
        arr = SystolicMatcherArray(3)
        arr.run(items_for("ABC", ab4), "ABCABCABC")
        assert arr.utilization() <= 0.5 + 1e-9
