"""Timing, power, and design-effort models (the quantitative claims)."""

import pytest

from repro.errors import ReproError
from repro.timing import DesignEffortModel, TimingModel
from repro.timing.power import (
    broadcast_cycle_time,
    broadcast_drive_power,
    crossover_cells,
    local_cycle_time,
    local_drive_power,
)


class TestTimingModel:
    def test_250ns_claim(self):
        tm = TimingModel(beat_ns=250.0)
        assert tm.bus_rate_chars_per_s() == pytest.approx(4e6)
        assert tm.text_rate_chars_per_s() == pytest.approx(2e6)

    def test_per_char_cost_independent_of_pattern_length(self):
        tm = TimingModel()
        assert tm.per_text_char_ns(2) == tm.per_text_char_ns(64)

    def test_software_cost_grows_with_pattern_length(self):
        tm = TimingModel()
        assert tm.software_per_text_char_ns(16) == 2 * tm.software_per_text_char_ns(8)

    def test_run_time_matches_array_driver(self):
        from repro.core.array import SystolicMatcherArray

        tm = TimingModel()
        arr = SystolicMatcherArray(6)
        assert tm.single_chip_run_ns(20, 6) == arr.beats_needed(20) * 250.0

    def test_cascade_same_rate_longer_fill(self):
        tm = TimingModel()
        t1 = tm.cascade_run_ns(1000, 8, 1)
        t5 = tm.cascade_run_ns(1000, 8, 5)
        # marginal cost per char identical; only fill/drain differ
        assert t5 - t1 == pytest.approx((5 * 8 - 8) * 2 * 250.0)

    def test_multipass_linear_in_runs(self):
        tm = TimingModel()
        one = tm.multipass_run_ns(40, n_cells=8, pattern_len=16)
        two = tm.multipass_run_ns(72, n_cells=8, pattern_len=16)
        assert two > one

    def test_invalid_beat_rejected(self):
        with pytest.raises(ReproError):
            TimingModel(beat_ns=0)


class TestPowerModel:
    def test_local_cycle_constant(self):
        assert local_cycle_time() == local_cycle_time()

    def test_unbuffered_broadcast_linear(self):
        t10 = broadcast_cycle_time(10)
        t20 = broadcast_cycle_time(20)
        t40 = broadcast_cycle_time(40)
        assert t40 - t20 == pytest.approx(2 * (t20 - t10))

    def test_buffered_broadcast_sublinear_but_more_power(self):
        t_unbuf = broadcast_cycle_time(256)
        t_buf = broadcast_cycle_time(256, buffered=True)
        assert t_buf < t_unbuf
        assert broadcast_drive_power(256) == 256 * local_drive_power()

    def test_crossover_exists(self):
        """Beyond a few cells, broadcast is slower than local wiring --
        the Section 3.3.1 argument."""
        n = crossover_cells()
        assert 2 <= n <= 100
        assert broadcast_cycle_time(n) > local_cycle_time()

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ReproError):
            broadcast_cycle_time(0)
        with pytest.raises(ReproError):
            broadcast_drive_power(-1)


class TestEconomics:
    def test_prototype_lands_near_two_man_months(self):
        """Section 5: 'took only about two man-months' (~8.7 weeks)."""
        weeks = DesignEffortModel().prototype_weeks()
        assert 6.0 <= weeks <= 11.0

    def test_regular_design_flat_in_instances(self):
        m = DesignEffortModel()
        small = m.regular_design_weeks(4, 24)
        large = m.regular_design_weeks(4, 24 * 100)
        assert large < 4 * small  # near-flat

    def test_irregular_design_linear_in_instances(self):
        m = DesignEffortModel()
        assert m.irregular_design_weeks(200) > 10 * m.irregular_design_weeks(10)

    def test_regularity_wins_at_scale(self):
        m = DesignEffortModel()
        assert m.regular_design_weeks(4, 1000) < m.irregular_design_weeks(1000) / 10

    def test_invalid_arguments_rejected(self):
        m = DesignEffortModel()
        with pytest.raises(ReproError):
            m.regular_design_weeks(0, 5)
        with pytest.raises(ReproError):
            m.regular_design_weeks(4, 2)
        with pytest.raises(ReproError):
            m.irregular_design_weeks(0)
