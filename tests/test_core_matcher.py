"""The character-level matcher against the Section 3.1 definition.

Includes the paper's own worked example (Figure 3-1) and property-based
equivalence with the oracle over random patterns, wildcard placements,
texts, and array sizes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Alphabet, PatternMatcher, match_oracle, parse_pattern
from repro.errors import AlphabetError, PatternError

from conftest import AB2, AB4, patterns, texts


class TestFigure31Example:
    """Pattern AXC against the text of Figure 3-1: matches ABC, AAC, ACC."""

    def test_exact_paper_text_r2_r5_r6(self, ab4):
        """Figure 3-1 verbatim: text ABCAACC, matches end at 2, 5, 6."""
        m = PatternMatcher("AXC", ab4)
        assert m.match("ABCAACC") == [
            False, False, True, False, False, True, True
        ]

    def test_paper_example(self, ab4):
        m = PatternMatcher("AXC", ab4)
        text = "ABCAACACCAB"
        results = m.match(text)
        assert [i for i, r in enumerate(results) if r] == [2, 5, 8]
        # every flagged window really matches A?C
        for i in m.report(text).match_positions:
            window = text[i - 2 : i + 1]
            assert window[0] == "A" and window[2] == "C"

    def test_incomplete_windows_report_false(self, ab4):
        m = PatternMatcher("AXC", ab4)
        assert m.match("AB") == [False, False]

    def test_find_returns_start_positions(self, ab4):
        m = PatternMatcher("AXC", ab4)
        assert m.find("ABCAAC") == [0, 3]


class TestBasicBehaviour:
    def test_single_char_pattern(self, ab4):
        m = PatternMatcher("B", ab4)
        assert m.match("ABBA") == [False, True, True, False]

    def test_all_wildcards_match_everything(self, ab4):
        m = PatternMatcher("XX", ab4)
        assert m.match("ABCD") == [False, True, True, True]

    def test_empty_text(self, ab4):
        assert PatternMatcher("AB", ab4).match("") == []

    def test_pattern_longer_than_text(self, ab4):
        assert PatternMatcher("ABCD", ab4).match("AB") == [False, False]

    def test_oversized_array_still_correct(self, ab4):
        m = PatternMatcher("AB", ab4, n_cells=7)
        assert m.match("CABAB") == [False, False, True, False, True]

    def test_pattern_must_fit_array(self, ab4):
        with pytest.raises(PatternError):
            PatternMatcher("ABCD", ab4, n_cells=3)

    def test_invalid_text_character_rejected(self, ab4):
        with pytest.raises(AlphabetError):
            PatternMatcher("AB", ab4).match("AZ")

    def test_matcher_is_reusable(self, ab4):
        m = PatternMatcher("AB", ab4)
        first = m.match("ABAB")
        second = m.match("ABAB")
        assert first == second == [False, True, False, True]

    def test_pattern_string_property(self, ab4):
        assert PatternMatcher("AXC", ab4).pattern_string == "AXC"
        assert PatternMatcher("AXC", ab4).pattern_length == 3


class TestReport:
    def test_report_statistics(self, ab4):
        rep = PatternMatcher("AXC", ab4).report("ABCAACACCAB")
        assert rep.beats > 0
        assert 0 < rep.utilization <= 0.5 + 1e-9
        assert rep.match_positions == [2, 5, 8]

    def test_utilization_approaches_half_on_long_texts(self, ab4):
        m = PatternMatcher("ABCD", ab4)
        rep = m.report("ABCD" * 100)
        assert 0.35 < rep.utilization <= 0.5


class TestOracleEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(pattern=patterns(), text=texts(), extra=st.integers(0, 4))
    def test_matches_oracle(self, pattern, text, extra):
        m = PatternMatcher(pattern, AB4, n_cells=len(pattern) + extra)
        assert m.match(text) == match_oracle(m.pattern, list(text))

    @settings(max_examples=30, deadline=None)
    @given(pattern=patterns(symbols="AB", wildcards=False, max_len=4),
           text=texts(symbols="AB", max_len=20))
    def test_matches_oracle_binary_alphabet(self, pattern, text):
        m = PatternMatcher(pattern, AB2)
        assert m.match(text) == match_oracle(m.pattern, list(text))

    def test_verify_against_oracle_helper(self, ab4):
        assert PatternMatcher("AXC", ab4).verify_against_oracle("ABCAACACCAB")
