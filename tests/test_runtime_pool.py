"""Mechanism-level tests for the concurrent runtime: channels, the
token-bucket admission gate, and the worker pool's dispatch/cancel
behaviour with real spawned processes."""

import pickle
import threading
import time

import pytest

from repro.alphabet import Alphabet
from repro.errors import ServiceError
from repro.runtime import (
    Channel,
    JobReply,
    JobRequest,
    RateLimiter,
    TokenBucket,
    WorkerPool,
)

AB = Alphabet("ABCD")


# -- admission: token buckets (pure logic, injected time) -------------------


class TestTokenBucket:
    def test_burst_then_throttle(self):
        b = TokenBucket(rate=10.0, burst=2)
        assert b.acquire_delay(0.0) == 0.0
        assert b.acquire_delay(0.0) == 0.0
        wait = b.acquire_delay(0.0)
        assert wait == pytest.approx(0.1)

    def test_refills_at_rate(self):
        b = TokenBucket(rate=10.0, burst=1)
        assert b.acquire_delay(0.0) == 0.0
        assert b.acquire_delay(0.0) > 0.0
        assert b.acquire_delay(0.2) == 0.0  # 0.2s * 10/s = 2 tokens back

    def test_burst_caps_accumulation(self):
        b = TokenBucket(rate=100.0, burst=2)
        b.acquire_delay(0.0)
        # A long quiet period must not bank more than `burst` tokens.
        assert b.acquire_delay(100.0) == 0.0
        assert b.acquire_delay(100.0) == 0.0
        assert b.acquire_delay(100.0) > 0.0

    def test_validates(self):
        with pytest.raises(ServiceError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ServiceError):
            TokenBucket(rate=1.0, burst=0)


class TestRateLimiter:
    def test_unlimited_tenant(self):
        lim = RateLimiter({})
        for _ in range(100):
            assert lim.delay("anyone", 0.0) == 0.0
        assert lim.waits == 0

    def test_per_tenant_isolation(self):
        lim = RateLimiter({"a": (1.0, 1)})
        assert lim.delay("a", 0.0) == 0.0
        assert lim.delay("a", 0.0) > 0.0  # a is throttled
        assert lim.delay("b", 0.0) == 0.0  # b is not
        assert lim.waits == 1

    def test_default_applies_to_unlisted(self):
        lim = RateLimiter({}, default=(1.0, 1))
        assert lim.delay("x", 0.0) == 0.0
        assert lim.delay("x", 0.0) > 0.0
        # Distinct tenants get distinct buckets even under the default.
        assert lim.delay("y", 0.0) == 0.0


# -- channels and the wire protocol ----------------------------------------


class TestChannel:
    def test_bounded_send_recv(self):
        import multiprocessing as mp

        ch = Channel(mp.get_context("spawn"), 2)
        assert ch.try_send(1)
        assert ch.try_send(2)
        assert not ch.try_send(3)  # full: blocked-sender backpressure
        assert ch.recv(timeout=1.0) == 1
        assert ch.recv(timeout=1.0) == 2
        ch.close()

    def test_capacity_validated(self):
        import multiprocessing as mp

        with pytest.raises(ServiceError):
            Channel(mp.get_context("spawn"), 0)

    def test_messages_picklable(self):
        req = JobRequest(
            job_id=1, attempt=0, workload="match",
            taps=list(AB.symbols), stream=["A", "B"], fault="death",
        )
        rep = JobReply(
            job_id=1, attempt=0, ok=True, worker="w", pid=1, wall_s=0.1,
            results=[True, False], metrics={"c": []}, spans=[{"name": "s"}],
        )
        assert pickle.loads(pickle.dumps(req)).job_id == 1
        assert pickle.loads(pickle.dumps(rep)).results == [True, False]


# -- the pool itself (real spawned workers) --------------------------------


@pytest.fixture(scope="module")
def pool():
    p = WorkerPool(2, AB).start()
    yield p
    p.shutdown()


def _collect(n, timeout=30.0):
    """A callback + waiter pair collecting *n* replies."""
    got = []
    done = threading.Event()
    lock = threading.Lock()

    def cb(reply):
        with lock:
            got.append(reply)
            if len(got) >= n:
                done.set()

    def wait():
        assert done.wait(timeout), f"only {len(got)}/{n} replies arrived"
        return got

    return cb, wait


def _match_request(job_id, text="ABCDABCA", attempt=0, **kw):
    from repro.alphabet import parse_pattern

    return JobRequest(
        job_id=job_id, attempt=attempt, workload="match",
        taps=parse_pattern("AB", AB), stream=list(text), **kw,
    )


class TestWorkerPool:
    def test_round_trip_matches_oracle(self, pool):
        from repro.workloads.registry import get_workload

        cb, wait = _collect(1)
        pool.submit(_match_request(1), cb)
        (reply,) = wait()
        assert reply.ok and not reply.died
        expect = get_workload("match").run("AB", "ABCDABCA", AB,
                                           engine="oracle")
        assert reply.results == expect

    def test_parallel_fanout_uses_both_workers(self, pool):
        cb, wait = _collect(8)
        for i in range(8):
            pool.submit(_match_request(100 + i, stall_s=0.05), cb)
        replies = wait()
        assert len({r.worker for r in replies}) == 2
        assert len({r.pid for r in replies}) == 2

    def test_death_directive_reports_died(self, pool):
        cb, wait = _collect(1)
        pool.submit(_match_request(2, fault="death"), cb)
        (reply,) = wait()
        assert not reply.ok and reply.died and reply.results is None

    def test_edf_dispatch_order(self, pool):
        """With one free worker, pending jobs drain earliest deadline
        first regardless of submission order."""
        order = []
        done = threading.Event()
        lock = threading.Lock()

        def cb(reply):
            with lock:
                order.append(reply.job_id)
                if len(order) >= 4 and done.is_set() is False:
                    done.set()

        base = time.monotonic()
        # Saturate both workers so the next three queue up.
        hold, hold_wait = _collect(2)
        pool.submit(_match_request(10, stall_s=0.3), hold)
        pool.submit(_match_request(11, stall_s=0.3), hold)
        time.sleep(0.05)  # let both dispatch
        pool.submit(_match_request(20), cb, deadline=base + 30.0)
        pool.submit(_match_request(21), cb, deadline=base + 10.0)
        pool.submit(_match_request(22), cb, deadline=base + 20.0)
        pool.submit(_match_request(23), cb)  # no deadline: last
        assert done.wait(30.0)
        hold_wait()
        assert order == [21, 22, 20, 23]

    def test_cancel_drops_stale_reply(self, pool):
        dropped_before = pool.dropped_replies
        cb, _ = _collect(1)
        pool.submit(_match_request(3, stall_s=0.2), cb)
        time.sleep(0.05)  # ensure it is dispatched, then abandon it
        pool.cancel(3, 0)
        deadline = time.monotonic() + 10.0
        while pool.dropped_replies == dropped_before:
            assert time.monotonic() < deadline, "stale reply never dropped"
            time.sleep(0.01)
        # The worker came back to the idle set and still serves jobs.
        cb2, wait2 = _collect(1)
        pool.submit(_match_request(4), cb2)
        assert wait2()[0].ok

    def test_worker_exception_ships_home(self, pool):
        cb, wait = _collect(1)
        bad = JobRequest(job_id=5, attempt=0, workload="no-such-workload",
                        taps=[], stream=[1.0])
        pool.submit(bad, cb)
        (reply,) = wait()
        assert not reply.ok and not reply.died
        assert "no-such-workload" in reply.error

    def test_submit_before_start_raises(self):
        p = WorkerPool(1, AB)
        with pytest.raises(ServiceError):
            p.submit(_match_request(1), lambda r: None)

    def test_needs_at_least_one_worker(self):
        with pytest.raises(ServiceError):
            WorkerPool(0, AB)
