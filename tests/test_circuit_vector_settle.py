"""Differential test: VectorizedCircuits vs per-instance settle_reference.

:class:`repro.circuit.VectorizedCircuits` steps a batch of structurally
identical netlists as one array program.  It must be *indistinguishable*
from running :func:`settle_reference` on each instance alone -- same
values, strengths and refresh clocks, same per-instance iteration
counts, same exceptions in the awkward regimes (strict charge decay,
VDD-GND shorts, oscillators) -- and :meth:`sync` must hand each Circuit
back in a state per-instance tooling can resume from.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import (
    GND,
    HIGH,
    LOW,
    UNKNOWN,
    VDD,
    Circuit,
    VectorizedCircuits,
)
from repro.circuit.gates import inverter, nand2
from repro.circuit.signals import Strength
from repro.circuit.simulator import settle_reference
from repro.errors import ChargeDecayError, CircuitError


def build_random(seed, name="dut"):
    """One random small netlist; deterministic in *seed* so structurally
    identical copies can be minted for the batch and the references."""
    rng = random.Random(seed)
    c = Circuit(name, retention_ns=500.0)
    names = [f"n{i}" for i in range(rng.randint(2, 6))]
    terminals = names + [VDD, GND]
    for _ in range(rng.randint(1, 9)):
        gate = rng.choice(names)
        a, b = rng.sample(terminals, 2)
        c.add_enhancement(gate, a, b)
    for _ in range(rng.randint(0, 2)):
        c.add_depletion_load(rng.choice(names))
    # Only names that ended up on a device exist as nodes; driving any
    # other name would be a topology change, which the batch rejects.
    live = [n for n in names if n in c.nodes]
    return c, live


def assert_batch_matches_refs(batch, refs, context=""):
    for i, c in enumerate(refs):
        for n in c.nodes:
            got = batch.read(n)[i]
            assert c.nodes[n].value is got, (
                f"inst {i} node {n!r} {context}: ref {c.nodes[n].value} "
                f"!= vec {got}"
            )


class TestRandomNetlists:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000))
    def test_batch_agrees_with_reference_over_random_runs(self, seed):
        rng = random.Random(seed * 7919 + 13)
        B = rng.randint(1, 6)
        refs = [build_random(seed)[0] for _ in range(B)]
        batch = VectorizedCircuits([build_random(seed)[0] for _ in range(B)])
        names = build_random(seed)[1]
        strict = rng.random() < 0.25
        for op_i in range(rng.randint(1, 10)):
            roll = rng.random()
            if roll < 0.55 and names:
                n = rng.choice(names)
                vals = [
                    rng.choice([HIGH, LOW, LOW, HIGH, UNKNOWN])
                    for _ in range(B)
                ]
                for c, v in zip(refs, vals):
                    c.set_input(n, v)
                batch.set_input(n, vals)
            elif roll < 0.8 and names:
                n = rng.choice(names)
                for c in refs:
                    c.release_input(n)
                batch.release_input(n)
            else:
                dt = rng.choice([100.0, 400.0, 700.0])
                for c in refs:
                    c.advance_time(dt)
                batch.advance_time(dt)
            ref_iters, ref_err = [], None
            for c in refs:
                try:
                    ref_iters.append(settle_reference(c, strict_decay=strict))
                except (ChargeDecayError, CircuitError) as e:
                    ref_err = type(e)
                    break
            try:
                vec_iters = batch.settle(strict_decay=strict)
                vec_err = None
            except (ChargeDecayError, CircuitError) as e:
                vec_err = type(e)
            if ref_err is not None:
                # Post-exception state is engine-defined: only the
                # failure itself must agree.
                assert vec_err is not None, f"op {op_i}: ref raised, vec ok"
                return
            assert vec_err is None, f"op {op_i}: vec raised, refs fine"
            assert vec_iters == ref_iters, f"op {op_i}: iteration counts"
            assert_batch_matches_refs(batch, refs, f"op {op_i}")

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_sync_round_trip_restores_per_instance_state(self, seed):
        rng = random.Random(seed)
        B = rng.randint(1, 4)
        refs = [build_random(seed)[0] for _ in range(B)]
        batch = VectorizedCircuits([build_random(seed)[0] for _ in range(B)])
        names = build_random(seed)[1]
        if not names:
            return
        n = rng.choice(names)
        vals = [rng.choice([HIGH, LOW]) for _ in range(B)]
        try:
            for c, v in zip(refs, vals):
                c.set_input(n, v)
                settle_reference(c)
        except CircuitError:
            # Oscillating netlist: the batch must refuse identically, and
            # there is no settled state to round-trip.
            batch.set_input(n, vals)
            with pytest.raises(CircuitError):
                batch.settle()
            return
        batch.set_input(n, vals)
        batch.settle()
        batch.sync()
        for c, ref in zip(batch.circuits, refs):
            assert c.inputs == ref.inputs
            assert c.time_ns == ref.time_ns
            for name in ref.nodes:
                assert c.nodes[name].value is ref.nodes[name].value
                assert c.nodes[name].strength == ref.nodes[name].strength
                if ref.nodes[name].strength <= Strength.CHARGE:
                    assert (
                        c.nodes[name].last_refresh
                        == ref.nodes[name].last_refresh
                    )
            # A re-settle on the synced circuit must already be a fixpoint.
            assert settle_reference(c) == 1


class TestStructuredScenarios:
    def test_inverter_batch_divergent_inputs(self):
        def make():
            c = Circuit("inv")
            inverter(c, "a", "y")
            return c

        batch = VectorizedCircuits([make() for _ in range(4)])
        batch.set_input("a", [LOW, HIGH, LOW, HIGH])
        batch.settle()
        assert batch.read_bool("y") == [True, False, True, False]

    def test_nand_batch_broadcast_and_truth_table(self):
        def make():
            c = Circuit("nand")
            nand2(c, "a", "b", "y")
            return c

        batch = VectorizedCircuits([make() for _ in range(4)])
        batch.set_input("a", [LOW, LOW, HIGH, HIGH])
        batch.set_input("b", [LOW, HIGH, LOW, HIGH])
        batch.settle()
        assert batch.read_bool("y") == [True, True, True, False]
        # Broadcast: one value pins every instance.
        batch.set_input("b", LOW)
        batch.settle()
        assert batch.read_bool("y") == [True] * 4

    def test_charge_retention_and_strict_decay(self):
        def make():
            c = Circuit("dram", retention_ns=100.0)
            from repro.circuit.gates import pass_transistor

            pass_transistor(c, gate="wl", a="bl", b="cell")
            return c

        batch = VectorizedCircuits([make() for _ in range(2)])
        batch.set_input("wl", HIGH)
        batch.set_input("bl", [HIGH, LOW])
        batch.settle()
        batch.set_input("wl", LOW)
        batch.release_input("bl")
        batch.settle()
        assert batch.read("cell") == [HIGH, LOW]  # retained charge
        batch.advance_time(200.0)  # past retention
        with pytest.raises(ChargeDecayError):
            batch.settle(strict_decay=True)

    def test_read_bool_raises_on_unknown_and_names_instance(self):
        def make():
            c = Circuit("inv")
            inverter(c, "a", "y")
            return c

        batch = VectorizedCircuits([make(), make()])
        batch.set_input("a", [LOW, UNKNOWN])
        batch.settle()
        with pytest.raises(CircuitError):
            batch.read_bool("y")


class TestContracts:
    def test_empty_batch_rejected(self):
        with pytest.raises(CircuitError):
            VectorizedCircuits([])

    def test_topology_mismatch_rejected(self):
        a = Circuit("a")
        inverter(a, "x", "y")
        b = Circuit("b")
        nand2(b, "x", "z", "y")
        with pytest.raises(CircuitError):
            VectorizedCircuits([a, b])

    def test_unknown_node_and_bad_lengths(self):
        c = Circuit("inv")
        inverter(c, "a", "y")
        batch = VectorizedCircuits([c])
        with pytest.raises(CircuitError):
            batch.set_input("nope", HIGH)
        with pytest.raises(CircuitError):
            batch.set_input("a", [HIGH, LOW])  # 2 values, 1 instance
        with pytest.raises(CircuitError):
            batch.release_input("nope")
        with pytest.raises(CircuitError):
            batch.read("nope")
        with pytest.raises(CircuitError):
            batch.advance_time(-1.0)

    def test_degrades_without_numpy(self, monkeypatch):
        import repro.circuit.vectorsettle as vs

        monkeypatch.setattr(vs, "_np", None)

        def make():
            c = Circuit("inv")
            inverter(c, "a", "y")
            return c

        batch = vs.VectorizedCircuits([make() for _ in range(3)])
        batch.set_input("a", [LOW, HIGH, LOW])
        iters = batch.settle()
        assert len(iters) == 3
        assert batch.read_bool("y") == [True, False, True]
        batch.release_input("a")
        batch.advance_time(10.0)
        batch.sync()  # no-op, but must not blow up
