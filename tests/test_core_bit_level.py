"""The bit-pipelined matcher of Figure 3-4."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Alphabet, BitLevelMatcher, PatternMatcher, match_oracle
from repro.errors import PatternError

from conftest import AB2, AB4, patterns, texts


class TestFigure34Structure:
    def test_rows_equal_character_bits(self, ab4):
        assert BitLevelMatcher("AXC", ab4).w == 2
        assert BitLevelMatcher("A", Alphabet("ABCDEFGH")).w == 3

    def test_checkerboard_activity(self, ab4):
        """Active comparators form the Figure 3-4 checkerboard: no two
        orthogonally adjacent comparators fire on the same beat."""
        m = BitLevelMatcher("ABC", ab4, record_checkerboard=True)
        m.match("ABCABCAB")
        assert len(m.checkerboard) > 0
        assert m.checkerboard_ok()

    def test_steady_state_has_active_cells_every_beat(self, ab4):
        m = BitLevelMatcher("ABC", ab4, record_checkerboard=True)
        m.match("ABCABCAB")
        mid = m.checkerboard[len(m.checkerboard) // 2]
        assert any(any(row) for row in mid.active)


class TestCorrectness:
    def test_paper_example(self, ab4):
        m = BitLevelMatcher("AXC", ab4)
        text = "ABCAACACCAB"
        assert m.match(text) == match_oracle(m.pattern, list(text))

    def test_agrees_with_char_level(self, ab4):
        text = "ABCDABCDABCD"
        for pattern in ("A", "AB", "XBC", "DDX"):
            bit = BitLevelMatcher(pattern, ab4).match(text)
            char = PatternMatcher(pattern, ab4).match(text)
            assert bit == char, pattern

    def test_single_bit_alphabet(self, ab2):
        m = BitLevelMatcher("AB", ab2)
        assert m.match("AABB") == [False, False, True, False]

    def test_wide_alphabet(self):
        ab8 = Alphabet("ABCDEFGH")  # 3-bit characters
        m = BitLevelMatcher("AXH", ab8)
        text = "ABHAHHGAH"
        assert m.match(text) == match_oracle(m.pattern, list(text))

    def test_oversized_array(self, ab4):
        m = BitLevelMatcher("AB", ab4, n_cells=5)
        text = "ABABAB"
        assert m.match(text) == match_oracle(m.pattern, list(text))

    def test_empty_text(self, ab4):
        assert BitLevelMatcher("AB", ab4).match("") == []

    def test_matcher_reusable(self, ab4):
        m = BitLevelMatcher("AB", ab4)
        assert m.match("ABAB") == m.match("ABAB")

    def test_pattern_must_fit(self, ab4):
        with pytest.raises(PatternError):
            BitLevelMatcher("ABC", ab4, n_cells=2)

    @settings(max_examples=30, deadline=None)
    @given(pattern=patterns(max_len=4), text=texts(max_len=16),
           extra=st.integers(0, 2))
    def test_matches_oracle(self, pattern, text, extra):
        m = BitLevelMatcher(pattern, AB4, n_cells=len(pattern) + extra)
        assert m.match(text) == match_oracle(m.pattern, list(text))

    @settings(max_examples=20, deadline=None)
    @given(pattern=patterns(symbols="AB", max_len=4),
           text=texts(symbols="AB", max_len=14))
    def test_matches_oracle_one_bit(self, pattern, text):
        m = BitLevelMatcher(pattern, AB2)
        assert m.match(text) == match_oracle(m.pattern, list(text))


class TestLatency:
    def test_accumulator_schedule_is_char_level_plus_w(self, ab4):
        """The bit-level machine's results exit exactly w beats after the
        character-level machine's: beats_needed reflects the extra rows."""
        bit = BitLevelMatcher("ABC", ab4)
        assert bit.beats_needed(10) == bit.text_entry_beat() + 2 * 9 + bit.w + bit.m + 2
