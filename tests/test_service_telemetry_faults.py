"""busy-beat accounting under faults: the double-count regression.

A worker death charged while its retry is already being reassigned used
to double-count the overlapping interval into ``busy_beats``, letting a
single worker report utilization > 1.  :meth:`WorkerStats.record_busy`
now clips every charged interval against the worker's accounted
high-water mark; these tests pin the clipping arithmetic directly and
sweep seeded fault schedules to hold the invariant end to end.
"""

from __future__ import annotations

import pytest

from repro import Alphabet, match_oracle, parse_pattern
from repro.chip.chip import ChipSpec
from repro.obs import MetricsRegistry
from repro.service import FaultInjector, MatcherService, uniform_pool
from repro.service.scheduler import Priority
from repro.service.telemetry import ServiceTelemetry, WorkerStats

AB = Alphabet("ABCD")
TEXT = "ABCAACACCABDBCADBACABCAACACCABDBCADBACA"


class TestRecordBusyClipping:
    def _stats(self):
        return WorkerStats(MetricsRegistry(), "w0", capacity=8)

    def test_disjoint_intervals_sum(self):
        w = self._stats()
        assert w.record_busy(0.0, 10.0) == 10.0
        assert w.record_busy(20.0, 25.0) == 5.0
        assert w.busy_beats == 15.0

    def test_overlap_charges_only_the_new_tail(self):
        w = self._stats()
        assert w.record_busy(0.0, 10.0) == 10.0
        # Retry overlapping the death interval: only beats 10..15 are new.
        assert w.record_busy(5.0, 15.0) == 5.0
        assert w.busy_beats == 15.0

    def test_fully_contained_interval_charges_nothing(self):
        w = self._stats()
        w.record_busy(0.0, 20.0)
        assert w.record_busy(3.0, 12.0) == 0.0
        assert w.busy_beats == 20.0

    def test_busy_never_exceeds_makespan(self):
        w = self._stats()
        w.record_busy(0.0, 10.0)
        w.record_busy(5.0, 15.0)
        w.record_busy(0.0, 12.0)
        assert w.busy_beats == 15.0
        assert w.utilization(15.0) == 1.0
        assert w.utilization(30.0) == pytest.approx(0.5)

    def test_zero_and_negative_intervals_are_noops(self):
        w = self._stats()
        assert w.record_busy(5.0, 5.0) == 0.0
        assert w.record_busy(9.0, 4.0) == 0.0
        assert w.busy_beats == 0.0


class TestFaultedFarmInvariants:
    def _drain(self, seed):
        pool = uniform_pool(3, ChipSpec(8, 2), AB)
        svc = MatcherService(
            pool,
            faults=FaultInjector(seed=seed, p_death=0.25, p_stuck=0.25),
        )
        for i in range(10):
            svc.submit(
                "AXC",
                TEXT * (1 + i % 3),
                tenant=f"t{i % 2}",
                priority=Priority.INTERACTIVE if i % 4 == 0
                else Priority.BATCH,
            )
        return svc, svc.drain()

    @pytest.mark.parametrize("seed", [3, 11, 29, 57, 101])
    def test_results_exact_despite_faults(self, seed):
        svc, results = self._drain(seed)
        assert len(results) == 10
        for r in results:
            # Every job used pattern AXC over whole repetitions of TEXT;
            # the result length recovers which repetition count this was.
            assert r.results == match_oracle(
                parse_pattern("AXC", AB),
                list(TEXT * (len(r.results) // len(TEXT))),
            )

    @pytest.mark.parametrize("seed", [3, 11, 29, 57, 101])
    def test_per_worker_busy_bounded_by_makespan(self, seed):
        svc, _ = self._drain(seed)
        tele = svc.telemetry
        makespan = tele.makespan_beats
        assert makespan > 0
        # The regression: deaths + retry reassignment must not charge a
        # worker for the same sim-time interval twice.
        for name, w in tele.workers.items():
            assert w.busy_beats <= makespan + 1e-9, (seed, name)
            assert 0.0 <= w.utilization(makespan) <= 1.0

    @pytest.mark.parametrize("seed", [11, 57])
    def test_fault_schedule_actually_fired(self, seed):
        # The sweep is only meaningful if faults really occurred.
        svc, _ = self._drain(seed)
        tele = svc.telemetry
        assert tele.deaths + tele.stuck_events > 0
        # Every death is recovered somehow: a retry or a software fallback.
        assert tele.retries + tele.fallbacks > 0

    def test_render_smoke_with_faults(self):
        svc, _ = self._drain(11)
        out = svc.telemetry.render()
        assert "matcher farm" in out
        assert "workers" in out
        for name in svc.telemetry.workers:
            assert name in out


class TestTelemetryRegistryViews:
    def test_scalar_views_read_and_write_through(self):
        tele = ServiceTelemetry()
        tele.submitted += 3
        tele.submitted -= 1
        assert tele.submitted == 2
        assert tele.registry.value("service.jobs.submitted") == 2
        tele.makespan_beats = 40.5
        assert tele.registry.value("service.makespan_beats") == 40.5

    def test_worker_stats_views_are_registry_backed(self):
        tele = ServiceTelemetry()
        w = tele.worker_stats("chip-0", capacity=8)
        w.record_busy(0.0, 12.0)
        assert tele.registry.value(
            "service.worker.busy_beats", worker="chip-0"
        ) == 12.0
        w.died = True
        assert tele.registry.value(
            "service.worker.died", worker="chip-0"
        ) == 1.0
