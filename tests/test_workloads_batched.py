"""`engine="batched"` and `run_many`: every registry workload, verified.

The batched engine must be indistinguishable from the per-job ``fast``
engine and the ``oracle`` for **every** workload in the registry --
across ragged batches (mixed stream lengths, including empty members)
and the empty batch -- because the service layers route traffic through
whichever engine the batch planner picks and promise oracle-identical
answers regardless.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Alphabet
from repro.workloads import (
    WorkloadError,
    get_workload,
    list_workloads,
    run_workload,
    run_workload_many,
)

AB = Alphabet("ABCD")

CHAR_WORKLOADS = ("match", "count")
NUMERIC_WORKLOADS = ("correlation", "inner-product", "convolution", "fir")

char_patterns = st.text(alphabet="ABCDX", min_size=1, max_size=10)
char_texts = st.text(alphabet="ABCD", min_size=0, max_size=50)
int_floats = st.integers(-8, 8).map(float)
taps_lists = st.lists(int_floats, min_size=1, max_size=6)
numeric_streams = st.lists(int_floats, min_size=0, max_size=40)


class TestEveryWorkload:
    @settings(max_examples=60, deadline=None)
    @given(
        st.sampled_from(CHAR_WORKLOADS),
        char_patterns,
        st.lists(char_texts, min_size=0, max_size=6),
    )
    def test_char_batched_equals_fast_equals_oracle(self, name, pattern, texts):
        spec = get_workload(name)
        batched = spec.run_many(pattern, texts, AB, engine="batched")
        assert batched == spec.run_many(pattern, texts, AB, engine="fast")
        assert batched == spec.run_many(pattern, texts, AB, engine="oracle")
        assert batched == [
            run_workload(name, pattern, t, AB, engine="oracle") for t in texts
        ]

    @settings(max_examples=60, deadline=None)
    @given(
        st.sampled_from(NUMERIC_WORKLOADS),
        taps_lists,
        st.lists(numeric_streams, min_size=0, max_size=6),
    )
    def test_numeric_batched_equals_fast_equals_oracle(
        self, name, taps, streams
    ):
        spec = get_workload(name)
        batched = spec.run_many(taps, streams, engine="batched")
        assert batched == spec.run_many(taps, streams, engine="fast")
        assert batched == [
            run_workload(name, taps, s, engine="oracle") for s in streams
        ]

    def test_all_registry_workloads_have_a_batched_path(self):
        for name in list_workloads():
            assert get_workload(name).batched is not None

    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from(CHAR_WORKLOADS), char_patterns, char_texts)
    def test_run_engine_batched_single_stream(self, name, pattern, text):
        got = run_workload(name, pattern, text, AB, engine="batched")
        assert got == run_workload(name, pattern, text, AB, engine="oracle")


class TestEdges:
    def test_empty_batch(self):
        assert run_workload_many("match", "AX", [], AB) == []
        assert run_workload_many("fir", [1.0, 2.0], []) == []

    def test_ragged_batch_with_empty_members(self):
        texts = ["", "ABCD", "A", "ABCDABCDABCD"]
        rows = run_workload_many("count", "AX", texts, AB)
        assert rows == [
            run_workload("count", "AX", t, AB, engine="oracle") for t in texts
        ]

    def test_stepwise_engine_still_loops(self):
        rows = run_workload_many(
            "match", "AB", ["ABAB", "BA"], AB, engine="stepwise"
        )
        assert rows == [
            run_workload("match", "AB", t, AB, engine="oracle")
            for t in ("ABAB", "BA")
        ]

    def test_unknown_engine_rejected(self):
        with pytest.raises(WorkloadError):
            run_workload_many("match", "AB", ["AB"], AB, engine="warp")
