"""Fleet health over the synchronous farm: quarantine semantics, wafer
healing, telemetry/observability, and the soak property -- results stay
byte-identical to the oracle for every registered workload while chips
die, get quarantined, and get replaced underneath the traffic."""

import pytest

from repro.alphabet import Alphabet
from repro.chip.chip import ChipSpec
from repro.errors import ProvisionError, ServiceError
from repro.obs import Observability
from repro.service import (
    FleetHealth,
    HealthConfig,
    MatcherService,
    ServiceTelemetry,
    WorkerState,
)
from repro.service.pool import uniform_pool
from repro.service.reliability import CellDefect, CellDefectKind, FaultInjector
from repro.bist.soak import generate_jobs, run_soak
from repro.wafer import WaferSupply
from repro.workloads.registry import get_workload, list_workloads

import random

AB = Alphabet("ABCD")

#: A defect BIST always catches (validated by test_bist_coverage).
STUCK = CellDefect(CellDefectKind.STUCK_AT_1, 0, 0, port="d_out")


def small_pool(n=3, cells=8):
    return uniform_pool(n, ChipSpec(cells, AB.bits, 250.0), AB)


def good_supply(n_wafers=16, seed=5):
    return WaferSupply(n_wafers, rows=3, cols=4, defect_rate=0.0, seed=seed)


class TestQuarantineSemantics:
    def test_quarantined_worker_leaves_dispatch(self):
        pool = small_pool()
        worker = pool.workers[0]
        worker.quarantine()
        assert worker.state is WorkerState.QUARANTINED
        assert not worker.is_live
        assert worker not in pool.idle_workers()
        assert worker not in pool.live_workers()
        assert worker in pool.quarantined_workers()
        assert pool.n_live == 2

    def test_quarantined_worker_refuses_work(self):
        pool = small_pool()
        worker = pool.workers[0]
        worker.quarantine()
        with pytest.raises(ServiceError, match="not live"):
            worker.run_match("AB", "ABAB")

    def test_quarantine_requires_live_worker(self):
        pool = small_pool()
        worker = pool.workers[0]
        worker.quarantine()
        with pytest.raises(ServiceError):
            worker.quarantine()

    def test_service_routes_around_quarantine(self):
        pool = small_pool()
        pool.workers[0].quarantine()
        service = MatcherService(pool)
        service.submit("AXC", "ABCAACACCABC")
        (result,) = service.drain()
        oracle = get_workload("match").run("AXC", "ABCAACACCABC", AB,
                                           engine="oracle")
        assert result.results == oracle
        assert pool.workers[0].name not in result.workers


class TestDetect:
    def test_healthy_sweep_takes_no_action(self):
        pool = small_pool()
        health = FleetHealth(pool)
        assert health.sweep() == []
        assert pool.n_live == 3

    def test_seeded_defect_is_caught_and_quarantined(self):
        pool = small_pool()
        telemetry = ServiceTelemetry()
        health = FleetHealth(pool, telemetry=telemetry)
        pool.workers[1].seed_defect(STUCK)
        events = health.sweep(heal=False)
        assert [e.action for e in events] == ["quarantine"]
        assert events[0].worker == pool.workers[1].name
        assert events[0].cell  # the BIST diagnosis names a cell
        assert pool.workers[1].state is WorkerState.QUARANTINED
        assert int(telemetry.bist_runs) == 3
        assert int(telemetry.bist_failures) == 1
        assert int(telemetry.quarantines) == 1

    def test_obs_spans_recorded(self):
        pool = small_pool(n=2)
        obs = Observability()
        health = FleetHealth(pool, obs=obs)
        pool.workers[0].seed_defect(STUCK)
        health.sweep(heal=False)
        bist_spans = obs.tracer.find("bist.run")
        assert len(bist_spans) == 2
        quarantine_spans = obs.tracer.find("health.quarantine")
        assert len(quarantine_spans) == 1
        assert quarantine_spans[0].attrs["worker"] == pool.workers[0].name
        assert obs.registry.value("health.quarantines",
                                  worker=pool.workers[0].name) == 1


class TestHeal:
    def test_heal_restores_target_capacity(self):
        pool = small_pool()
        telemetry = ServiceTelemetry()
        health = FleetHealth(pool, supply=good_supply(),
                             telemetry=telemetry)
        pool.workers[0].seed_defect(STUCK)
        pool.workers[2].seed_defect(STUCK)
        events = health.sweep()
        assert pool.n_live == health.target_live == 3
        actions = [e.action for e in events]
        assert actions.count("quarantine") == 2
        assert actions.count("heal") == 2
        assert int(telemetry.heals) == 2
        # Replacements are real, working workers with fresh names.
        heal_names = {e.worker for e in events if e.action == "heal"}
        for worker in pool.live_workers():
            if worker.name in heal_names:
                assert worker.latent_defect is None
                assert worker.capacity > 0

    def test_heal_covers_execution_deaths_too(self):
        """target_live is the fleet size at attach time: a worker killed
        by the fault injector mid-traffic (not quarantined) still gets
        replaced on the next sweep."""
        pool = small_pool()
        health = FleetHealth(pool, supply=good_supply())
        pool.workers[0].state = WorkerState.DEAD  # how service.py kills
        assert pool.n_live == 2
        events = health.sweep()
        assert pool.n_live == 3
        assert [e.action for e in events] == ["heal"]

    def test_heal_without_supply_raises(self):
        health = FleetHealth(small_pool())
        with pytest.raises(ProvisionError, match="no wafer supply"):
            health.heal_one()

    def test_exhausted_supply_raises_cleanly(self):
        pool = small_pool()
        health = FleetHealth(pool, supply=good_supply(n_wafers=0))
        with pytest.raises(ProvisionError, match="exhausted"):
            health.heal_one()

    def test_unattainable_min_capacity_raises_not_hangs(self):
        pool = small_pool()
        config = HealthConfig(min_capacity=999, max_provision_attempts=3)
        health = FleetHealth(pool, supply=good_supply(), config=config)
        with pytest.raises(ProvisionError, match="no provisionable wafer"):
            health.heal_one()
        assert health.supply.drawn == 3  # stayed inside the budget


class TestInjectorDrivenSweep:
    def test_sampled_defects_are_caught_and_healed(self, health_injector):
        """With the injector growing a latent defect on every idle
        worker, one sweep quarantines the whole fleet and heals it back
        to target from the wafer lot."""
        pool = small_pool()
        health = FleetHealth(pool, supply=good_supply(),
                             injector=health_injector)
        events = health.sweep()
        actions = [e.action for e in events]
        assert actions.count("quarantine") == 3
        assert actions.count("heal") == 3
        assert pool.n_live == health.target_live == 3

    def test_sweep_replays_identically_from_conftest_seed(
        self, health_injector
    ):
        from conftest import HEALTH_SEED

        def one_run(injector):
            pool = small_pool()
            health = FleetHealth(pool, supply=good_supply(),
                                 injector=injector)
            return health.sweep()

        twin = FaultInjector(seed=HEALTH_SEED, p_defect=1.0)
        assert one_run(health_injector) == one_run(twin)


class TestSoak:
    """The headline property: under continuous chip deaths, latent
    defects, quarantines, and wafer healing, every result the farm
    returns is byte-identical to the workload oracle."""

    @pytest.fixture(scope="class")
    def soak(self):
        return run_soak()

    def test_zero_mismatches(self, soak):
        assert soak.mismatches == 0
        assert soak.jobs == soak.rounds * 18

    def test_at_least_one_quarantine_heal_cycle(self, soak):
        assert soak.quarantines >= 1
        assert soak.heals >= 1
        assert soak.bist_runs >= soak.rounds

    def test_fleet_ends_healed_to_target(self, soak):
        assert soak.final_live >= soak.target_live
        assert soak.ok

    def test_soak_is_deterministic(self, soak):
        """Same seed, same deaths, same diagnoses, same replacement
        fleet -- the whole audit trail is byte-identical on a re-run."""
        assert run_soak().to_wire() == soak.to_wire()

    def test_jobs_cover_every_workload(self):
        rng = random.Random(3)
        jobs = generate_jobs(rng, 18, Alphabet("abcd"))
        assert {w for w, _, _ in jobs} == set(list_workloads())
