"""Chained arrays must be beat-for-beat identical to one long array."""

import random

import pytest

from repro import Alphabet, match_oracle, parse_pattern
from repro.core.array import MATCHER_CHANNELS, SystolicMatcherArray, TextToken
from repro.core.cells import MatcherCellKernel
from repro.errors import SimulationError
from repro.streams import RecirculatingPattern
from repro.systolic.cell import is_bubble
from repro.systolic.cell import PassThroughKernel
from repro.systolic.engine import ChannelDirection, ChannelSpec, LinearArray
from repro.systolic.topology import ChainedArrays


def matcher_stage(n):
    return LinearArray(n, MATCHER_CHANNELS, lambda i: MatcherCellKernel(), ("p", "s"))


def run_matcher(stepper, n_cells, pattern, text, ab):
    """Drive any step()-able array with the standard schedule."""
    reference = SystolicMatcherArray(n_cells)
    items = RecirculatingPattern(parse_pattern(pattern, ab)).items
    tokens = [TextToken(c, i) for i, c in enumerate(text)]
    schedule = reference.input_schedule(
        items, tokens, reference.beats_needed(len(tokens))
    )
    raw = {}
    for beat_in in schedule:
        out = stepper.step(beat_in)
        if not is_bubble(out["s"]) and not is_bubble(out["r"]):
            raw[out["s"].index] = getattr(out["r"], "value", out["r"])
    k = len(pattern) - 1
    return [bool(raw.get(i, False)) if i >= k else False for i in range(len(text))]


class TestChainEquivalence:
    @pytest.mark.parametrize("sizes", [(1, 1), (2, 3), (3, 3, 2), (1, 4, 1, 2)])
    def test_chain_equals_oracle(self, sizes, ab4):
        random.seed(sum(sizes))
        total = sum(sizes)
        chain = ChainedArrays([matcher_stage(n) for n in sizes])
        for _ in range(5):
            L = random.randint(1, total)
            pattern = "".join(random.choice("ABCDX") for _ in range(L))
            text = "".join(random.choice("ABCD") for _ in range(random.randint(0, 25)))
            got = run_matcher(chain, total, pattern, text, ab4)
            want = match_oracle(parse_pattern(pattern, ab4), list(text))
            assert got == want, (sizes, pattern, text)
            chain.reset()

    def test_five_chip_cascade_shape(self, ab4):
        """Figure 3-7's headline configuration: 5 chips, capacity 5n."""
        n = 2
        chain = ChainedArrays([matcher_stage(n) for _ in range(5)])
        assert chain.n_cells == 5 * n
        pattern = "ABCDABCDAX"  # length 10 = full capacity
        text = "ABCDABCDABABCDABCDAD"
        got = run_matcher(chain, chain.n_cells, pattern, text, ab4)
        want = match_oracle(parse_pattern(pattern, ab4), list(text))
        assert got == want

    def test_snapshot_concatenates_stages(self):
        chain = ChainedArrays([matcher_stage(2), matcher_stage(3)])
        snap = chain.snapshot()
        assert len(snap["p"]) == 5
        assert len(snap["s"]) == 5


class TestChainValidation:
    def test_empty_chain_rejected(self):
        with pytest.raises(SimulationError):
            ChainedArrays([])

    def test_mismatched_channels_rejected(self):
        a = LinearArray(
            1,
            [ChannelSpec("x", ChannelDirection.RIGHT)],
            lambda i: PassThroughKernel(),
            ("x",),
        )
        b = matcher_stage(1)
        with pytest.raises(SimulationError):
            ChainedArrays([a, b])

    def test_mismatched_directions_rejected(self):
        a = LinearArray(
            1,
            [ChannelSpec("x", ChannelDirection.RIGHT)],
            lambda i: PassThroughKernel(),
            ("x",),
        )
        b = LinearArray(
            1,
            [ChannelSpec("x", ChannelDirection.LEFT)],
            lambda i: PassThroughKernel(),
            ("x",),
        )
        with pytest.raises(SimulationError):
            ChainedArrays([a, b])

    def test_reset_clears_all_stages(self):
        chain = ChainedArrays([matcher_stage(2), matcher_stage(2)])
        chain.step({"p": None})
        chain.reset()
        assert chain.beat == 0
        assert all(s.beat == 0 for s in chain.stages)
