"""Alphabets, wildcards, and binary encodings."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import Alphabet, PatternChar, WILDCARD, parse_pattern, pattern_to_string
from repro.alphabet import PROTOTYPE_ALPHABET, is_wildcard
from repro.errors import AlphabetError, PatternError


class TestAlphabet:
    def test_prototype_alphabet_is_two_bits(self):
        assert PROTOTYPE_ALPHABET.bits == 2
        assert len(PROTOTYPE_ALPHABET) == 4

    def test_default_bits_is_minimum(self):
        assert Alphabet("AB").bits == 1
        assert Alphabet("ABC").bits == 2
        assert Alphabet("ABCDE").bits == 3

    def test_explicit_wider_encoding_allowed(self):
        assert Alphabet("AB", bits=4).bits == 4

    def test_too_narrow_encoding_rejected(self):
        with pytest.raises(AlphabetError):
            Alphabet("ABCDE", bits=2)

    def test_empty_alphabet_rejected(self):
        with pytest.raises(AlphabetError):
            Alphabet("")

    def test_duplicate_symbols_rejected(self):
        with pytest.raises(AlphabetError):
            Alphabet("ABA")

    def test_multichar_symbols_rejected(self):
        with pytest.raises(AlphabetError):
            Alphabet(["AB", "C"])

    def test_membership_and_index(self):
        ab = Alphabet("ABCD")
        assert "C" in ab
        assert "Z" not in ab
        assert ab.index("C") == 2
        with pytest.raises(AlphabetError):
            ab.index("Z")

    def test_encode_is_big_endian(self):
        ab = Alphabet("ABCD")
        assert ab.encode("A") == (0, 0)
        assert ab.encode("B") == (0, 1)
        assert ab.encode("C") == (1, 0)
        assert ab.encode("D") == (1, 1)

    def test_decode_rejects_bad_width_and_values(self):
        ab = Alphabet("ABCD")
        with pytest.raises(AlphabetError):
            ab.decode((0,))
        with pytest.raises(AlphabetError):
            ab.decode((0, 2))

    def test_decode_rejects_out_of_range_codes(self):
        ab = Alphabet("ABC")  # 2 bits, code 3 unused
        with pytest.raises(AlphabetError):
            ab.decode((1, 1))

    def test_equality_and_hash(self):
        assert Alphabet("AB") == Alphabet("AB")
        assert Alphabet("AB") != Alphabet("AB", bits=2)
        assert hash(Alphabet("AB")) == hash(Alphabet("AB"))

    @given(st.sampled_from("ABCDEFGH"))
    def test_encode_decode_roundtrip(self, ch):
        ab = Alphabet("ABCDEFGH")
        assert ab.decode(ab.encode(ch)) == ch

    def test_validate_text(self):
        ab = Alphabet("AB", bits=1)
        assert ab.validate_text("ABBA") == list("ABBA")
        with pytest.raises(AlphabetError):
            ab.validate_text("ABC")


class TestPatternParsing:
    def test_wildcard_symbol_parsed(self):
        pcs = parse_pattern("AXC", Alphabet("ABCD"))
        assert [p.is_wild for p in pcs] == [False, True, False]

    def test_wildcard_object_always_wild(self):
        ab = Alphabet("AX")  # X is a real symbol here
        pcs = parse_pattern(["A", WILDCARD, "X"], ab)
        assert [p.is_wild for p in pcs] == [False, True, False]

    def test_wildcard_symbol_in_alphabet_is_literal(self):
        ab = Alphabet("AX")
        pcs = parse_pattern("AX", ab)
        assert [p.is_wild for p in pcs] == [False, False]

    def test_empty_pattern_rejected(self):
        with pytest.raises(PatternError):
            parse_pattern("", Alphabet("AB"))

    def test_invalid_character_rejected(self):
        with pytest.raises(AlphabetError):
            parse_pattern("AZ", Alphabet("AB"))

    def test_pattern_char_matches(self):
        assert PatternChar("A").matches("A")
        assert not PatternChar("A").matches("B")
        assert PatternChar("A", is_wild=True).matches("B")

    def test_round_trip_to_string(self):
        ab = Alphabet("ABCD")
        assert pattern_to_string(parse_pattern("AXCD", ab)) == "AXCD"

    def test_is_wildcard_helper(self):
        assert is_wildcard(WILDCARD)
        assert not is_wildcard("X")
