"""Concurrent-safety tests for the observability layer.

The concurrent runtime shares one :class:`MetricsRegistry` between the
event loop, the pool's dispatcher/collector threads, and (via snapshot
merge) the worker processes.  These tests pin down the contract: metric
updates are atomic under threads, registry get-or-create never races
out duplicate instances, worker snapshots fold in additively, and spans
recorded in another process re-parent correctly under the host's
``runtime.job`` span."""

import asyncio
import threading

import pytest

from repro.alphabet import Alphabet
from repro.errors import ObservabilityError
from repro.obs import Observability
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

AB = Alphabet("ABCD")


class TestThreadSafety:
    def test_counter_increments_are_atomic(self):
        r = MetricsRegistry()
        c = r.counter("hits")
        n_threads, n_incs = 8, 2000

        def worker():
            for _ in range(n_incs):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n_threads * n_incs

    def test_histogram_observations_are_atomic(self):
        r = MetricsRegistry()
        h = r.histogram("lat", buckets=[0.5, 1.5])
        n_threads, n_obs = 8, 1000

        def worker():
            for i in range(n_obs):
                h.observe(i % 2)  # alternate buckets

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == n_threads * n_obs
        assert sum(h.bucket_counts) == n_threads * n_obs

    def test_get_or_create_never_duplicates(self):
        r = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            seen.append(r.counter("shared", tenant="a"))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(c) for c in seen}) == 1

    def test_tracer_records_from_threads(self):
        tracer = Tracer(max_spans=10_000)
        n_threads, n_spans = 8, 500

        def worker(k):
            for i in range(n_spans):
                tracer.record(f"t{k}", t0=i, t1=i + 1)

        threads = [
            threading.Thread(target=worker, args=(k,))
            for k in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer.spans) == n_threads * n_spans
        ids = [s.span_id for s in tracer.spans]
        assert len(set(ids)) == len(ids)  # no id was handed out twice


class TestSnapshotMerge:
    def test_counters_fold_additively(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("jobs", worker="w0").inc(3)
        a.counter("jobs", worker="w1").inc(2)
        b.counter("jobs", worker="w0").inc(10)
        b.merge_snapshot(a.snapshot())
        assert b.counter("jobs", worker="w0").value == 13
        assert b.counter("jobs", worker="w1").value == 2
        b.merge_snapshot(a.snapshot())  # merging twice adds twice
        assert b.counter("jobs", worker="w0").value == 16

    def test_gauges_take_incoming_value(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("depth").set(7)
        b.gauge("depth").set(99)
        b.merge_snapshot(a.snapshot())
        assert b.gauge("depth").value == 7

    def test_histograms_fold_bucketwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for v in (0.1, 0.9, 5.0):
            a.histogram("wall", buckets=[1.0, 2.0]).observe(v)
        b.histogram("wall", buckets=[1.0, 2.0]).observe(1.5)
        b.merge_snapshot(a.snapshot())
        h = b.histogram("wall", buckets=[1.0, 2.0])
        assert h.count == 4
        assert h.total == pytest.approx(7.5)
        assert h.bucket_counts == [2, 1, 1]

    def test_mismatched_histogram_buckets_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("wall", buckets=[1.0]).observe(0.5)
        snap = a.snapshot()
        b.histogram("wall", buckets=[1.0])
        # Corrupt the shipped bucket layout: merge must refuse.
        snap["wall"][0]["bucket_counts"] = [1, 2, 3, 4]
        with pytest.raises(ObservabilityError):
            b.merge_snapshot(snap)

    def test_unknown_kind_rejected(self):
        b = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            b.merge_snapshot({"x": [{"kind": "exotic", "labels": {}}]})


class TestSpanAdoption:
    def test_adopt_reparents_and_offsets(self):
        remote = Tracer()
        root = remote.record("worker.kernel", t0=0.0, t1=2.0, unit="s")
        remote.record("worker.sub", t0=0.5, t1=1.0, unit="s", parent=root)
        host = Tracer()
        parent = host.open_span("runtime.job", t0=10.0, unit="s")
        adopted = host.adopt(
            remote.to_dict()["spans"], parent=parent, offset=10.0
        )
        assert len(adopted) == 2
        kernel, sub = adopted
        assert kernel.parent_id == parent.span_id
        assert sub.parent_id == kernel.span_id  # intra-batch link kept
        assert kernel.t0 == 10.0 and kernel.t1 == 12.0
        assert sub.t0 == 10.5
        ids = {s.span_id for s in host.spans}
        assert len(ids) == len(host.spans)  # fresh ids, no collisions

    def test_adopt_respects_max_spans(self):
        remote = Tracer()
        for i in range(10):
            remote.record("s", t0=i, t1=i + 1)
        host = Tracer(max_spans=5)
        host.adopt(remote.to_dict()["spans"])
        assert len(host.spans) == 5
        assert host.dropped_spans == 5


class TestProcessBoundary:
    def test_worker_process_obs_lands_under_runtime_job(self):
        """End to end across a real process boundary: worker counters
        merge into the host registry and worker.kernel spans parent
        under the runtime.job that dispatched them.  Texts are distinct
        and submitted per-job so neither the result cache nor batch
        coalescing collapses the six device dispatches."""
        from repro.runtime import AsyncMatcherService

        texts = [("ABAB" * 8) + "AB" * i for i in range(6)]

        async def go():
            obs = Observability()
            async with AsyncMatcherService(2, AB, obs=obs) as svc:
                for text in texts:
                    await svc.submit("AB", text)
                await svc.drain()
            return obs

        obs = asyncio.run(go())
        snap = obs.registry.snapshot()
        merged_jobs = sum(
            row["value"] for row in snap["runtime.worker.jobs"]
        )
        assert merged_jobs == 6  # every worker-side increment arrived
        merged_samples = sum(
            row["value"] for row in snap["runtime.worker.samples"]
        )
        assert merged_samples == sum(len(t) for t in texts)
        spans = obs.tracer.to_dict()["spans"]
        jobs = {s["span_id"]: s for s in spans if s["name"] == "runtime.job"}
        kernels = [s for s in spans if s["name"] == "worker.kernel"]
        assert len(jobs) == 6 and len(kernels) == 6
        for k in kernels:
            assert jobs[k["parent_id"]]["attrs"]["workload"] == "match"
            # Worker wall-time sits inside the host-side job window.
            assert k["t0"] >= jobs[k["parent_id"]]["t0"]
